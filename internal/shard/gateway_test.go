// Gateway tests live in an external package: internal/server depends on
// shard (drain protocol), so tests that stand up real backends must not
// be part of package shard itself.
package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/search"
	"toppkg/internal/server"
	"toppkg/internal/session"
	"toppkg/internal/shard"
)

// backend is one full serve stack under test.
type backend struct {
	ts  *httptest.Server
	mgr *session.Manager
	cat *catalog.Catalog
}

// newBackend builds a serve stack with shard identity id. Every backend
// built by this helper holds an identical catalogue (same seeded
// dataset), the replicated-catalogue premise of a sharded deployment.
func newBackend(t *testing.T, id string, store session.Store, mutable bool) *backend {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	items := dataset.UNI(60, 2, rng)
	cfg := core.Config{
		Items:          items,
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 3,
		K:              2,
		RandomCount:    1,
		SampleCount:    40,
		Seed:           5,
		Search:         search.Options{MaxQueue: 32, MaxAccessed: 100},
	}
	var (
		shared *core.Shared
		cat    *catalog.Catalog
		err    error
	)
	if mutable {
		cat, err = catalog.New(catalog.Config{
			Profile:        cfg.Profile,
			MaxPackageSize: cfg.MaxPackageSize,
			Items:          items,
			Coalesce:       2 * time.Millisecond,
			DeltaThreshold: catalog.DefaultDeltaThreshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		shared, err = core.NewLiveShared(cfg, cat)
	} else {
		shared, err = core.NewShared(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := session.NewManager(session.Config{Shared: shared, Capacity: 1024, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(mgr, server.Options{Catalog: cat, ShardID: id}))
	t.Cleanup(func() {
		ts.Close()
		if cat != nil {
			cat.Close()
		}
		mgr.Close()
	})
	return &backend{ts: ts, mgr: mgr, cat: cat}
}

// newGateway fronts the given backends and serves the gateway itself on
// a test listener.
func newGateway(t *testing.T, cfg shard.Config, ids []string, bks map[string]*backend) (*shard.Gateway, *httptest.Server) {
	t.Helper()
	var list []shard.Backend
	for _, id := range ids {
		list = append(list, shard.Backend{ID: id, URL: bks[id].ts.URL})
	}
	gw, err := shard.New(cfg, list)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw)
	t.Cleanup(func() {
		ts.Close()
		gw.Close()
	})
	return gw, ts
}

// get/post/del are tiny JSON HTTP helpers returning status and body.
func httpDo(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// ownerOf mirrors the gateway's routing decision for assertions.
func ownerOf(id string, members ...string) string {
	return shard.NewRing(shard.DefaultVNodes, members).Owner(id)
}

// sessionOwnedBy finds a session ID the given ring membership routes to
// the wanted shard.
func sessionOwnedBy(t *testing.T, want string, members ...string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("u%05d", i)
		if ownerOf(id, members...) == want {
			return id
		}
	}
	t.Fatalf("no session routed to %s in 100k candidates", want)
	return ""
}

func TestGatewayRoutesToOwnerShard(t *testing.T) {
	bks := map[string]*backend{
		"sa": newBackend(t, "sa", nil, false),
		"sb": newBackend(t, "sb", nil, false),
	}
	_, gts := newGateway(t, shard.Config{}, []string{"sa", "sb"}, bks)
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("u%03d", i)
		resp, err := http.Get(gts.URL + "/sessions/" + id + "/recommend")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend %s via gateway = %d", id, resp.StatusCode)
		}
		if got, want := resp.Header.Get("X-Shard"), ownerOf(id, "sa", "sb"); got != want {
			t.Fatalf("session %s served by shard %q, ring owner is %q", id, got, want)
		}
	}
	// Residency must follow routing: every session lives on exactly its
	// owner shard, none on the other.
	for id := range bks {
		for _, info := range bks[id].mgr.List() {
			if got := ownerOf(info.ID, "sa", "sb"); got != id {
				t.Errorf("session %s resident on %s but owned by %s", info.ID, id, got)
			}
		}
	}
	if total := bks["sa"].mgr.Len() + bks["sb"].mgr.Len(); total != 20 {
		t.Errorf("%d sessions resident across shards, want 20", total)
	}

	// The default session (no path ID, no header) routes consistently too.
	status, _ := httpDo(t, http.MethodGet, gts.URL+"/recommend", nil)
	if status != http.StatusOK {
		t.Fatalf("legacy /recommend via gateway = %d", status)
	}

	// An invalid session ID is rejected at the gateway, before proxying.
	req, err := http.NewRequest(http.MethodGet, gts.URL+"/recommend", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Session-ID", "no spaces!")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid session ID = %d, want 400", resp.StatusCode)
	}
}

// shardHashes scrapes idmap_hash/space_hash/items from a backend.
func shardHashes(t *testing.T, b *backend) (idmap, space string, items int) {
	t.Helper()
	var h struct {
		Catalog struct {
			IDMapHash string `json:"idmap_hash"`
			SpaceHash string `json:"space_hash"`
			Items     int    `json:"items"`
		} `json:"catalog"`
	}
	status, body := httpDo(t, http.MethodGet, b.ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz = %d", status)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	return h.Catalog.IDMapHash, h.Catalog.SpaceHash, h.Catalog.Items
}

func assertConverged(t *testing.T, bks map[string]*backend) {
	t.Helper()
	var refID, refSP string
	refItems, first := 0, true
	for id, b := range bks {
		idm, sp, items := shardHashes(t, b)
		if idm == "" {
			t.Fatalf("shard %s reports no idmap_hash", id)
		}
		if first {
			refID, refSP, refItems, first = idm, sp, items, false
			continue
		}
		if idm != refID || sp != refSP || items != refItems {
			t.Fatalf("shard %s diverged: (%s,%s,%d) vs (%s,%s,%d)",
				id, idm, sp, items, refID, refSP, refItems)
		}
	}
}

func TestGatewayMutationLogReplication(t *testing.T) {
	bks := map[string]*backend{
		"sa": newBackend(t, "sa", nil, true),
		"sb": newBackend(t, "sb", nil, true),
		"sc": newBackend(t, "sc", nil, true),
	}
	_, gts := newGateway(t, shard.Config{}, []string{"sa", "sb", "sc"}, bks)

	// Synchronous mutation: 200 only after every shard applied it.
	status, body := httpDo(t, http.MethodPost, gts.URL+"/catalog/items?wait=1",
		map[string]any{"items": []map[string]any{{"id": 200, "name": "new", "values": []float64{0.5, 0.5}}}})
	if status != http.StatusOK {
		t.Fatalf("upsert via gateway = %d: %s", status, body)
	}
	var ack struct {
		Applied int `json:"applied"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Applied != 3 {
		t.Fatalf("upsert ack %s (err %v), want applied=3", body, err)
	}
	assertConverged(t, bks)
	if _, _, items := shardHashes(t, bks["sa"]); items != 61 {
		t.Fatalf("items = %d after insert, want 61", items)
	}

	// Asynchronous mutation: 202 now, convergence via the status endpoint.
	status, body = httpDo(t, http.MethodDelete, gts.URL+"/catalog/items/200", nil)
	if status != http.StatusAccepted {
		t.Fatalf("async delete via gateway = %d: %s", status, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cs struct {
			Pending   bool `json:"pending"`
			Converged bool `json:"converged"`
		}
		status, body = httpDo(t, http.MethodGet, gts.URL+"/catalog", nil)
		if status != http.StatusOK {
			t.Fatalf("gateway catalog status = %d", status)
		}
		if err := json.Unmarshal(body, &cs); err != nil {
			t.Fatal(err)
		}
		if !cs.Pending && cs.Converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards never converged: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	assertConverged(t, bks)
	if _, _, items := shardHashes(t, bks["sa"]); items != 60 {
		t.Fatalf("items = %d after delete, want 60", items)
	}

	// A deterministically invalid mutation is rejected identically on
	// every shard and relayed as the client's error — it must not wedge
	// the log or break convergence.
	status, body = httpDo(t, http.MethodPost, gts.URL+"/catalog/items?wait=1",
		map[string]any{"items": []map[string]any{{"id": 201, "values": []float64{1, 2, 3, 4}}}})
	if status < 400 || status >= 500 {
		t.Fatalf("invalid upsert via gateway = %d (%s), want a 4xx relay", status, body)
	}
	// The log stays live after the rejection.
	status, _ = httpDo(t, http.MethodPost, gts.URL+"/catalog/items?wait=1",
		map[string]any{"items": []map[string]any{{"id": 202, "values": []float64{0.1, 0.9}}}})
	if status != http.StatusOK {
		t.Fatalf("upsert after rejected batch = %d", status)
	}
	assertConverged(t, bks)
}

// TestGatewayAddShardMigratesBitIdentically is the acceptance anchor for
// rebalancing: a session whose owner changes when a shard joins must,
// after migrating through the shared store, produce byte-for-byte the
// recommendation an unmigrated replay of the same history produces. Both
// sides run the identical op sequence, flush through a store, restore,
// and then recommend — the migrated side across two processes via the
// gateway, the control side on a single backend via /admin/drain.
func TestGatewayAddShardMigratesBitIdentically(t *testing.T) {
	// The session must route to "sa" alone, then to "sb" once it joins.
	id := sessionOwnedBy(t, "sb", "sa", "sb")

	ops := func(t *testing.T, base, sid string) {
		status, _ := httpDo(t, http.MethodGet, base+"/sessions/"+sid+"/recommend", nil)
		if status != http.StatusOK {
			t.Fatalf("recommend = %d", status)
		}
		for _, fb := range []map[string][]int{
			{"winner": {0}, "loser": {1}},
			{"winner": {2}, "loser": {3}},
		} {
			status, body := httpDo(t, http.MethodPost, base+"/sessions/"+sid+"/feedback", fb)
			if status != http.StatusOK {
				t.Fatalf("feedback = %d: %s", status, body)
			}
		}
	}

	// Migrated path: ops through the gateway land on sa; AddShard(sb)
	// drains the session to the shared store; the next recommend routes
	// to sb, which restores it.
	store := session.NewMemStore()
	bks := map[string]*backend{
		"sa": newBackend(t, "sa", store, false),
		"sb": newBackend(t, "sb", store, false),
	}
	gw, gts := newGateway(t, shard.Config{}, []string{"sa"}, bks)
	ops(t, gts.URL, id)
	if bks["sa"].mgr.Len() != 1 {
		t.Fatalf("session not resident on sa before rebalance")
	}
	flushed, err := gw.AddShard("sb", bks["sb"].ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if flushed != 1 {
		t.Fatalf("rebalance flushed %d sessions, want 1", flushed)
	}
	status, migrated := httpDo(t, http.MethodGet, gts.URL+"/sessions/"+id+"/recommend", nil)
	if status != http.StatusOK {
		t.Fatalf("post-migration recommend = %d", status)
	}
	if bks["sb"].mgr.Len() != 1 || bks["sa"].mgr.Len() != 0 {
		t.Fatalf("session did not move: sa=%d sb=%d", bks["sa"].mgr.Len(), bks["sb"].mgr.Len())
	}
	if st := bks["sb"].mgr.Stats(); st.Restored != 1 {
		t.Fatalf("new owner restored %d sessions, want 1 (state must come from the snapshot)", st.Restored)
	}

	// Control path: the same history on one unmigrated backend, flushed
	// and restored in place through its own store.
	controlStore := session.NewMemStore()
	control := newBackend(t, "ctl", controlStore, false)
	ops(t, control.ts.URL, id)
	status, _ = httpDo(t, http.MethodPost, control.ts.URL+shard.DrainPath,
		shard.DrainRequest{Self: "ctl", Shards: []string{"elsewhere"}})
	if status != http.StatusOK {
		t.Fatalf("control drain = %d", status)
	}
	status, replay := httpDo(t, http.MethodGet, control.ts.URL+"/sessions/"+id+"/recommend", nil)
	if status != http.StatusOK {
		t.Fatalf("control recommend = %d", status)
	}

	if !bytes.Equal(migrated, replay) {
		t.Fatalf("post-rebalance recommendation differs from unmigrated replay:\nmigrated: %s\nreplay:   %s", migrated, replay)
	}
}

func TestGatewayRemoveShardDrainsSessions(t *testing.T) {
	store := session.NewMemStore()
	bks := map[string]*backend{
		"sa": newBackend(t, "sa", store, false),
		"sb": newBackend(t, "sb", store, false),
	}
	_, gts := newGateway(t, shard.Config{}, []string{"sa", "sb"}, bks)
	// Touch sessions until both shards hold some, remembering one that
	// landed on the shard we are about to remove.
	victim := ""
	for i := 0; bks["sa"].mgr.Len() == 0 || bks["sb"].mgr.Len() == 0; i++ {
		if i >= 50 {
			t.Fatal("could not populate both shards")
		}
		sid := fmt.Sprintf("u%03d", i)
		status, body := httpDo(t, http.MethodPost, gts.URL+"/sessions/"+sid+"/feedback",
			map[string][]int{"winner": {0}, "loser": {1}})
		if status != http.StatusOK {
			t.Fatalf("feedback = %d: %s", status, body)
		}
		if ownerOf(sid, "sa", "sb") == "sb" {
			victim = sid
		}
	}
	onB := bks["sb"].mgr.Len()
	if victim == "" {
		t.Fatal("no session landed on sb")
	}
	status, body := httpDo(t, http.MethodDelete, gts.URL+"/gateway/shards/sb", nil)
	if status != http.StatusOK {
		t.Fatalf("remove shard = %d: %s", status, body)
	}
	var out struct {
		Flushed int  `json:"flushed"`
		Drained bool `json:"drained"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Drained || out.Flushed != onB {
		t.Fatalf("removal drained=%v flushed=%d, want true/%d", out.Drained, out.Flushed, onB)
	}
	if bks["sb"].mgr.Len() != 0 {
		t.Fatalf("%d sessions still resident on removed shard", bks["sb"].mgr.Len())
	}
	// The departed shard's sessions now route to sa and restore there —
	// the one we know had feedback must come back with it.
	if ownerOf(victim, "sa") != "sa" {
		t.Fatal("sanity: single-member ring must own everything")
	}
	var stats struct {
		Feedback int `json:"feedback"`
	}
	status, body = httpDo(t, http.MethodGet, gts.URL+"/sessions/"+victim+"/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats after removal = %d", status)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Feedback == 0 {
		t.Fatalf("victim session lost its feedback across the drain: %s", body)
	}
}

func TestGatewayDeadShardAnswers502(t *testing.T) {
	b := newBackend(t, "sa", nil, false)
	gw, err := shard.New(shard.Config{Retries: 1, RetryBackoff: time.Millisecond},
		[]shard.Backend{{ID: "sa", URL: b.ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gts := httptest.NewServer(gw)
	defer gts.Close()
	b.ts.Close() // kill the backend out from under the gateway
	status, body := httpDo(t, http.MethodGet, gts.URL+"/sessions/u1/recommend", nil)
	if status != http.StatusBadGateway {
		t.Fatalf("dead shard = %d (%s), want 502", status, body)
	}
	if !strings.Contains(string(body), "sa") {
		t.Fatalf("502 body does not name the shard: %s", body)
	}
}

func TestDrainEndpointRejectsWrongShard(t *testing.T) {
	b := newBackend(t, "sa", session.NewMemStore(), false)
	status, body := httpDo(t, http.MethodPost, b.ts.URL+shard.DrainPath,
		shard.DrainRequest{Self: "sb", Shards: []string{"sa", "sb"}})
	if status != http.StatusBadRequest {
		t.Fatalf("misaddressed drain = %d (%s), want 400", status, body)
	}
}
