package dataset

import (
	"math"
	"math/rand"
	"testing"

	"toppkg/internal/feature"
)

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func columns(items []feature.Item, a, b int) (xs, ys []float64) {
	for i := range items {
		va, vb := items[i].Values[a], items[i].Values[b]
		if feature.IsNull(va) || feature.IsNull(vb) {
			continue
		}
		xs = append(xs, va)
		ys = append(ys, vb)
	}
	return xs, ys
}

func checkShape(t *testing.T, items []feature.Item, n, m int) {
	t.Helper()
	if len(items) != n {
		t.Fatalf("got %d items, want %d", len(items), n)
	}
	for i := range items {
		if items[i].ID != i {
			t.Fatalf("item %d has ID %d", i, items[i].ID)
		}
		if len(items[i].Values) != m {
			t.Fatalf("item %d has %d features, want %d", i, len(items[i].Values), m)
		}
		for j, v := range items[i].Values {
			if feature.IsNull(v) {
				continue
			}
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("item %d feature %d = %g outside [0,1]", i, j, v)
			}
		}
	}
}

func TestUNIShapeAndRange(t *testing.T) {
	items := UNI(2000, 4, rand.New(rand.NewSource(1)))
	checkShape(t, items, 2000, 4)
	xs, ys := columns(items, 0, 1)
	if r := pearson(xs, ys); math.Abs(r) > 0.08 {
		t.Errorf("UNI features correlated: r = %.3f", r)
	}
}

func TestPWRHeavyTail(t *testing.T) {
	items := PWR(5000, 2, 2.5, rand.New(rand.NewSource(2)))
	checkShape(t, items, 5000, 2)
	// Power-law: the vast majority of mass is far below the max.
	below := 0
	for i := range items {
		if items[i].Values[0] < 0.1 {
			below++
		}
	}
	frac := float64(below) / float64(len(items))
	if frac < 0.9 {
		t.Errorf("power law not heavy-tailed: %.2f below 0.1 of max", frac)
	}
}

func TestPWRAlphaDefault(t *testing.T) {
	items := PWR(100, 2, 0, rand.New(rand.NewSource(3))) // alpha ≤ 1 → default
	checkShape(t, items, 100, 2)
}

func TestCORPositivelyCorrelated(t *testing.T) {
	items := COR(3000, 3, rand.New(rand.NewSource(4)))
	checkShape(t, items, 3000, 3)
	xs, ys := columns(items, 0, 2)
	if r := pearson(xs, ys); r < 0.7 {
		t.Errorf("COR correlation too weak: r = %.3f", r)
	}
}

func TestANTNegativelyCorrelated(t *testing.T) {
	items := ANT(3000, 2, rand.New(rand.NewSource(5)))
	checkShape(t, items, 3000, 2)
	xs, ys := columns(items, 0, 1)
	if r := pearson(xs, ys); r > -0.5 {
		t.Errorf("ANT correlation not negative enough: r = %.3f", r)
	}
}

func TestNBAShape(t *testing.T) {
	items := NBA(rand.New(rand.NewSource(6)))
	checkShape(t, items, NBAPlayers, NBAFeatures)
}

func TestNBACorrelationStructure(t *testing.T) {
	items := NBA(rand.New(rand.NewSource(7)))
	// Counting stats driven by the same latent volume must correlate:
	// minutes (1) vs points (2).
	xs, ys := columns(items, 1, 2)
	if r := pearson(xs, ys); r < 0.5 {
		t.Errorf("minutes–points correlation = %.3f, want strong", r)
	}
	// Percentages are only weakly tied to volume: fg% (7) vs minutes (1).
	xs, ys = columns(items, 1, 7)
	if r := pearson(xs, ys); r > 0.9 {
		t.Errorf("minutes–fg%% correlation = %.3f, suspiciously strong", r)
	}
}

func TestNBAThreePctNulls(t *testing.T) {
	items := NBA(rand.New(rand.NewSource(8)))
	nulls := 0
	for i := range items {
		if feature.IsNull(items[i].Values[9]) {
			nulls++
		}
	}
	frac := float64(nulls) / float64(len(items))
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("three_pct null fraction = %.2f, want ≈0.25", frac)
	}
}

func TestNBASelect(t *testing.T) {
	items := NBA(rand.New(rand.NewSource(9)))
	sel := NBASelect(items, 10)
	checkShape(t, sel, NBAPlayers, 10)
	if sel2 := NBASelect(items, 99); len(sel2[0].Values) != NBAFeatures {
		t.Errorf("over-wide selection returned %d features", len(sel2[0].Values))
	}
}

func TestGenerateDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, kind := range Kinds() {
		items, err := Generate(kind, 50, 3, rng)
		if err != nil {
			t.Fatalf("Generate(%s): %v", kind, err)
		}
		if kind == "nba" {
			if len(items) != NBAPlayers || len(items[0].Values) != 3 {
				t.Errorf("nba shape: %d×%d", len(items), len(items[0].Values))
			}
		} else if len(items) != 50 || len(items[0].Values) != 3 {
			t.Errorf("%s shape: %d×%d", kind, len(items), len(items[0].Values))
		}
	}
	if _, err := Generate("zipf", 10, 2, rng); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := UNI(100, 3, rand.New(rand.NewSource(42)))
	b := UNI(100, 3, rand.New(rand.NewSource(42)))
	for i := range a {
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatal("UNI not deterministic under equal seeds")
			}
		}
	}
}

// TestDatasetsUsableAsSpaces: every generated dataset must survive space
// construction (normalization, null handling) for a typical profile.
func TestDatasetsUsableAsSpaces(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	profile := feature.SimpleProfile(feature.AggSum, feature.AggAvg, feature.AggMax)
	for _, kind := range Kinds() {
		items, err := Generate(kind, 200, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := feature.NewSpace(items, profile, 5); err != nil {
			t.Errorf("space over %s: %v", kind, err)
		}
	}
}
