// Package dataset generates the evaluation datasets of §5: the four
// synthetic distributions obtained by adapting the skyline benchmark
// generator of Börzsönyi et al. [4] — independent uniform (UNI), power law
// (PWR, α = 2.5), correlated (COR) and anti-correlated (ANT) — plus a
// synthesizer for the NBA career-statistics dataset.
//
// The paper's NBA data came from databasebasketball.com (now defunct):
// 3705 players, 17 career-statistic features, of which 10 were used. NBA
// reproduces that shape — same cardinality and dimensionality, a latent
// skill factor inducing the strong cross-feature correlations of real
// career stats, power-law playing time, and nulls on the three-point
// percentage of early-era players — so every experiment that consumed the
// real file exercises identical code paths (see DESIGN.md, Substitutions).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"toppkg/internal/feature"
)

// UNI generates n items with m independent features uniform in [0,1].
func UNI(n, m int, rng *rand.Rand) []feature.Item {
	items := make([]feature.Item, n)
	for i := range items {
		vals := make([]float64, m)
		for j := range vals {
			vals[j] = rng.Float64()
		}
		items[i] = feature.Item{ID: i, Name: name("uni", i), Values: vals}
	}
	return items
}

// PWR generates n items with m independent power-law features
// (density ∝ x^−α, α = alpha, default 2.5 per §5) normalized into [0,1].
func PWR(n, m int, alpha float64, rng *rand.Rand) []feature.Item {
	if alpha <= 1 {
		alpha = 2.5
	}
	raw := make([][]float64, n)
	maxV := make([]float64, m)
	for i := range raw {
		vals := make([]float64, m)
		for j := range vals {
			// Inverse-CDF sampling of a Pareto with x_min = 1:
			// x = (1-u)^(-1/(α-1)).
			u := rng.Float64()
			vals[j] = math.Pow(1-u, -1/(alpha-1))
			if vals[j] > maxV[j] {
				maxV[j] = vals[j]
			}
		}
		raw[i] = vals
	}
	items := make([]feature.Item, n)
	for i := range items {
		for j := range raw[i] {
			raw[i][j] /= maxV[j]
		}
		items[i] = feature.Item{ID: i, Name: name("pwr", i), Values: raw[i]}
	}
	return items
}

// COR generates n items whose m features are positively correlated
// (Börzsönyi-style: points scattered tightly around the diagonal).
func COR(n, m int, rng *rand.Rand) []feature.Item {
	items := make([]feature.Item, n)
	for i := range items {
		base := rng.Float64()
		vals := make([]float64, m)
		for j := range vals {
			vals[j] = clamp01(base + rng.NormFloat64()*0.08)
		}
		items[i] = feature.Item{ID: i, Name: name("cor", i), Values: vals}
	}
	return items
}

// ANT generates n items whose m features are anti-correlated
// (Börzsönyi-style: points near the hyperplane Σv = m/2, so an item good
// on one feature tends to be poor on the others).
func ANT(n, m int, rng *rand.Rand) []feature.Item {
	items := make([]feature.Item, n)
	for i := range items {
		vals := make([]float64, m)
		// Draw a point on the simplex scaled to sum m/2, then jitter.
		sum := 0.0
		for j := range vals {
			vals[j] = -math.Log(1 - rng.Float64()) // Exp(1): Dirichlet via normalization
			sum += vals[j]
		}
		target := float64(m) / 2
		for j := range vals {
			vals[j] = clamp01(vals[j]/sum*target + rng.NormFloat64()*0.03)
		}
		items[i] = feature.Item{ID: i, Name: name("ant", i), Values: vals}
	}
	return items
}

// NBAFeatureNames lists the 17 synthesized career-statistic features, in
// column order.
var NBAFeatureNames = [17]string{
	"games", "minutes", "points", "rebounds", "assists", "steals", "blocks",
	"fg_pct", "ft_pct", "three_pct", "turnovers", "fouls", "seasons",
	"win_shares", "double_doubles", "all_star", "efficiency",
}

// NBAPlayers and NBAFeatures are the cardinality and width of the paper's
// NBA dataset.
const (
	NBAPlayers  = 3705
	NBAFeatures = 17
)

// NBA synthesizes the NBA career-statistics dataset: NBAPlayers items with
// NBAFeatures features, all normalized to [0,1]. A latent skill in (0,1)
// and a power-law-ish career length drive the counting stats, so features
// are strongly (but not perfectly) correlated, as in real career data;
// percentage stats are weakly correlated with skill; three_pct is Null for
// roughly a quarter of players (the pre-three-point-line era).
func NBA(rng *rand.Rand) []feature.Item {
	items := make([]feature.Item, NBAPlayers)
	maxV := make([]float64, NBAFeatures)
	raw := make([][]float64, NBAPlayers)
	for i := 0; i < NBAPlayers; i++ {
		skill := math.Pow(rng.Float64(), 2) // squashed: most players are role players
		career := math.Pow(rng.Float64(), 1.6)
		vol := skill * career // volume factor behind counting stats

		v := make([]float64, NBAFeatures)
		noise := func(s float64) float64 { return math.Max(0, 1+rng.NormFloat64()*s) }
		v[0] = career * 1200 * noise(0.15)                            // games
		v[1] = vol * 38000 * noise(0.2)                               // minutes
		v[2] = vol * 26000 * noise(0.25)                              // points
		v[3] = vol * 11000 * noise(0.35)                              // rebounds
		v[4] = vol * 6500 * noise(0.45)                               // assists
		v[5] = vol * 1800 * noise(0.4)                                // steals
		v[6] = vol * 1500 * noise(0.6)                                // blocks
		v[7] = clamp(0.38+0.12*skill+rng.NormFloat64()*0.04, 0, 0.7)  // fg%
		v[8] = clamp(0.68+0.15*skill+rng.NormFloat64()*0.06, 0, 0.95) // ft%
		if rng.Float64() < 0.25 {
			v[9] = feature.Null // pre-1979 era: no three-point line
		} else {
			v[9] = clamp(0.25+0.12*skill+rng.NormFloat64()*0.07, 0, 0.5) // 3p%
		}
		v[10] = vol * 2600 * noise(0.3)                     // turnovers (volume-driven)
		v[11] = career * 2800 * noise(0.25)                 // fouls
		v[12] = career * 20 * noise(0.1)                    // seasons
		v[13] = vol * 180 * noise(0.3)                      // win shares
		v[14] = vol * vol * 500 * noise(0.5)                // double-doubles (superstar-skewed)
		v[15] = math.Floor(skill * skill * 15 * noise(0.3)) // all-star selections
		v[16] = vol * 20000 * noise(0.2)                    // efficiency
		raw[i] = v
		for j, x := range v {
			if !feature.IsNull(x) && x > maxV[j] {
				maxV[j] = x
			}
		}
	}
	for i := range raw {
		for j := range raw[i] {
			if feature.IsNull(raw[i][j]) {
				continue
			}
			if maxV[j] > 0 {
				raw[i][j] /= maxV[j]
			}
		}
		items[i] = feature.Item{ID: i, Name: fmt.Sprintf("player%04d", i), Values: raw[i]}
	}
	return items
}

// NBASelect returns a copy of the items restricted to nFeatures of the 17
// features, chosen deterministically (the paper randomly selected 10 of
// 17). The selection interleaves counting and percentage stats.
func NBASelect(items []feature.Item, nFeatures int) []feature.Item {
	order := [...]int{2, 3, 4, 7, 0, 5, 8, 6, 13, 16, 1, 10, 11, 12, 14, 15, 9}
	if nFeatures > len(order) {
		nFeatures = len(order)
	}
	sel := order[:nFeatures]
	out := make([]feature.Item, len(items))
	for i := range items {
		vals := make([]float64, nFeatures)
		for j, f := range sel {
			vals[j] = items[i].Values[f]
		}
		out[i] = feature.Item{ID: items[i].ID, Name: items[i].Name, Values: vals}
	}
	return out
}

// Generate dispatches by dataset name: "uni", "pwr", "cor", "ant" (n×m) or
// "nba" (fixed size; m selects the first m of the 10 chosen features).
func Generate(kind string, n, m int, rng *rand.Rand) ([]feature.Item, error) {
	switch kind {
	case "uni", "UNI":
		return UNI(n, m, rng), nil
	case "pwr", "PWR":
		return PWR(n, m, 2.5, rng), nil
	case "cor", "COR":
		return COR(n, m, rng), nil
	case "ant", "ANT":
		return ANT(n, m, rng), nil
	case "nba", "NBA":
		return NBASelect(NBA(rng), m), nil
	}
	return nil, fmt.Errorf("dataset: unknown kind %q", kind)
}

// Kinds lists the dataset names accepted by Generate, in the paper's order.
func Kinds() []string { return []string{"uni", "pwr", "cor", "ant", "nba"} }

func name(prefix string, i int) string { return fmt.Sprintf("%s%06d", prefix, i) }

func clamp01(v float64) float64 { return clamp(v, 0, 1) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
