// Shoppingcart contrasts the paper's learned-tradeoff approach with the
// hard-constraint baseline (§1) on a book-buying scenario, and shows the
// §7 extension: schema predicates on packages ("at least two novels").
//
// The hard-constraint approach needs the user to guess a budget: too low
// and good bundles are cut, too high and the choice explodes. The learned
// utility instead discovers how much this user is willing to trade money
// for quality from a few clicks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"toppkg/internal/core"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
	"toppkg/internal/simulate"
)

const seed = 11

func main() {
	rng := rand.New(rand.NewSource(seed))
	books, isNovel := makeBooks(rng)

	profile := feature.MustProfile(2,
		feature.Entry{Feature: 0, Agg: feature.AggSum}, // total price
		feature.Entry{Feature: 1, Agg: feature.AggAvg}, // average rating
	)
	sp, err := feature.NewSpace(books, profile, 4)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Baseline: hard budget + maximize rating (the approach of [27]).
	fmt.Println("hard-constraint baseline (budget then maximize avg rating):")
	for _, budget := range []float64{20, 45, 90} {
		best := bestUnderBudget(sp, budget)
		if best.Pkg.IDs == nil {
			fmt.Printf("  budget $%3.0f → nothing affordable\n", budget)
			continue
		}
		fmt.Printf("  budget $%3.0f → %-14s price $%5.2f rating %.2f\n",
			budget, best.Pkg, price(sp, best.Pkg), best.Utility)
	}
	fmt.Println("  (answers swing wildly with the guessed budget)")

	// ---- This paper: learn the price/quality trade-off from clicks.
	novelPred := pkgspace.MinCount(2, func(it feature.Item) bool { return isNovel[it.ID] })
	eng, err := core.New(core.Config{
		Items:          books,
		Profile:        profile,
		MaxPackageSize: 4,
		K:              3,
		RandomCount:    3,
		Semantics:      ranking.EXP,
		SampleCount:    400,
		Seed:           seed,
		// §7 schema predicate: carts must contain at least two novels.
		Search: search.Options{Candidate: novelPred},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Hidden shopper: strongly quality-driven, mildly price-sensitive.
	shopper := &simulate.User{U: mustUtility(profile, []float64{-0.3, 0.9})}
	rngUser := rand.New(rand.NewSource(seed + 1))

	fmt.Println("\nelicited-utility approach (≥2 novels per cart):")
	for round := 1; round <= 6; round++ {
		slate, err := eng.Recommend()
		if err != nil {
			log.Fatal(err)
		}
		top := slate.Recommended[0]
		novels := countNovels(top.Pkg, isNovel)
		fmt.Printf("  round %d: %-14s price $%5.2f novels %d trueU %.3f\n",
			round, top.Pkg, price(eng.Space(), top.Pkg), novels,
			shopper.U.Score(pkgspace.Vector(eng.Space(), top.Pkg)))
		if novels < 2 {
			log.Fatalf("predicate violated: %d novels", novels)
		}
		pick := shopper.Choose(eng.Space(), slate.All, rngUser)
		if err := eng.Click(slate.All[pick], slate.All); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("  (no budget guessed; the trade-off was learned from clicks)")
}

// bestUnderBudget scans all packages: max avg rating subject to total
// price ≤ budget — the hard-constraint optimization.
func bestUnderBudget(sp *feature.Space, budget float64) pkgspace.Scored {
	var best pkgspace.Scored
	pkgspace.Enumerate(sp, func(p pkgspace.Package) {
		if price(sp, p) > budget {
			return
		}
		var sum float64
		for _, id := range p.IDs {
			sum += sp.Items[id].Values[1]
		}
		avg := sum / float64(p.Size())
		if best.Pkg.IDs == nil || avg > best.Utility {
			best = pkgspace.Scored{Pkg: p, Utility: avg}
		}
	})
	return best
}

func price(sp *feature.Space, p pkgspace.Package) float64 {
	var s float64
	for _, id := range p.IDs {
		s += sp.Items[id].Values[0]
	}
	return s
}

func countNovels(p pkgspace.Package, isNovel map[int]bool) int {
	n := 0
	for _, id := range p.IDs {
		if isNovel[id] {
			n++
		}
	}
	return n
}

func makeBooks(rng *rand.Rand) ([]feature.Item, map[int]bool) {
	const nBooks = 60
	books := make([]feature.Item, nBooks)
	isNovel := make(map[int]bool, nBooks)
	for i := range books {
		quality := rng.Float64()
		pr := 8 + quality*25 + rng.Float64()*10 // better books cost more
		rating := clamp(0.3+0.6*quality+rng.NormFloat64()*0.08, 0, 1)
		books[i] = feature.Item{
			ID:     i,
			Name:   fmt.Sprintf("book%02d", i),
			Values: []float64{pr, rating},
		}
		isNovel[i] = rng.Float64() < 0.5
	}
	return books, isNovel
}

func mustUtility(p *feature.Profile, w []float64) *feature.Utility {
	u, err := feature.NewUtility(p, w)
	if err != nil {
		panic(err)
	}
	return u
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
