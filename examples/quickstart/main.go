// Quickstart walks through the paper's running example (Figure 1/2): three
// items with cost and rating features, packages of size up to two, the
// (sum, avg) aggregate profile, and the three ranking semantics under an
// uncertain utility — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/ranking"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
)

func main() {
	// Figure 1(a): three items, two features (f1 = cost, f2 = rating).
	items := []feature.Item{
		{ID: 0, Name: "t1", Values: []float64{0.6, 0.2}},
		{ID: 1, Name: "t2", Values: []float64{0.4, 0.4}},
		{ID: 2, Name: "t3", Values: []float64{0.2, 0.4}},
	}
	// The profile (sum1, avg2): package cost is the sum of item costs,
	// package quality the average rating.
	profile := feature.SimpleProfile(feature.AggSum, feature.AggAvg)

	// φ = 2: packages of one or two items.
	sp, err := feature.NewSpace(items, profile, 2)
	if err != nil {
		log.Fatal(err)
	}

	// A fixed utility first: the paper's w1 = (0.5, 0.1), weighting the
	// cost dimension at 0.5 and the quality dimension at 0.1.
	u, err := feature.NewUtility(profile, []float64{0.5, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	ix := search.NewIndex(sp)
	res, err := ix.TopK(u, search.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 packages under w = (0.5, 0.1):")
	for i, sc := range res.Packages {
		fmt.Printf("  %d. %s utility %.3f\n", i+1, describe(sp, sc.Pkg), sc.Utility)
	}

	// Now the uncertain utility of Figure 2: three possible weight vectors
	// with probabilities (0.3, 0.4, 0.3), and the three ranking semantics.
	samples := []sampling.Sample{
		{W: []float64{0.5, 0.1}, Q: 0.3},
		{W: []float64{0.1, 0.5}, Q: 0.4},
		{W: []float64{0.1, 0.1}, Q: 0.3},
	}
	for _, sem := range []ranking.Semantics{ranking.EXP, ranking.TKP, ranking.MPO} {
		ranked, err := ranking.Rank(ix, samples, sem, ranking.Options{
			K:          2,
			PerSampleK: 6, // evaluate all six packages per sample
			Search:     search.Options{ExpandAll: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop-2 under %s:\n", sem)
		for i, r := range ranked {
			fmt.Printf("  %d. %s score %.3f\n", i+1, describe(sp, r.Pkg), r.Score)
		}
	}
	fmt.Println("\nas in the paper: EXP → (p4, p5), TKP → (p5, p4), MPO → (p5, p2).")
}

func describe(sp *feature.Space, p pkgspace.Package) string {
	s := "{"
	for i, id := range p.IDs {
		if i > 0 {
			s += ", "
		}
		s += sp.Items[id].Name
	}
	return s + "}"
}
