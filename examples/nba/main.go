// NBA builds "dream-team" packages of players from the synthesized NBA
// career-statistics dataset (the paper's real-data evaluation set) and
// contrasts the three ranking semantics on the same uncertain utility. It
// also shows the skyline baseline's problem: the Pareto set over even a
// tiny player subset is too big to browse.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/gaussmix"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/ranking"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
	"toppkg/internal/skyline"
)

const seed = 21

func main() {
	rng := rand.New(rand.NewSource(seed))
	players := dataset.NBASelect(dataset.NBA(rng), 4) // points, rebounds, assists, fg%

	// A team of up to 5 players; the profile mixes totals and averages:
	// total points, total rebounds, avg assists, min fg% (weakest shooter).
	profile := feature.MustProfile(4,
		feature.Entry{Feature: 0, Agg: feature.AggSum},
		feature.Entry{Feature: 1, Agg: feature.AggSum},
		feature.Entry{Feature: 2, Agg: feature.AggAvg},
		feature.Entry{Feature: 3, Agg: feature.AggMin},
	)
	sp, err := feature.NewSpace(players, profile, 5)
	if err != nil {
		log.Fatal(err)
	}
	ix := search.NewIndex(sp)

	// Uncertainty about the coach's taste: prior plus two observed
	// preferences (from earlier sessions) restricting the weight space.
	prior := gaussmix.DefaultPrior(4, 1, rng)
	graph := prefgraph.New()
	addPref(graph, sp, pkgspace.New(0, 1), pkgspace.New(2))
	addPref(graph, sp, pkgspace.New(3, 4, 5), pkgspace.New(6, 7))
	v := sampling.NewValidator(4, graph.Constraints(true))
	ms := &sampling.MCMC{Prior: prior, V: v}
	res, err := ms.Sample(rng, 800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drew %d weight samples (%d raw draws) consistent with %d preferences\n\n",
		len(res.Samples), res.Attempts, graph.Edges())

	for _, sem := range []ranking.Semantics{ranking.EXP, ranking.TKP, ranking.MPO} {
		ranked, err := ranking.Rank(ix, res.Samples, sem, ranking.Options{K: 3,
			Search: search.Options{MaxQueue: 64, MaxAccessed: 300}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top teams under %s:\n", sem)
		for i, r := range ranked {
			fmt.Printf("  %d. score %.3f  %s\n", i+1, r.Score, roster(sp, r.Pkg))
		}
		fmt.Println()
	}

	// The skyline baseline on a 16-player subset with genuinely conflicting
	// objectives — maximize total points, minimize total turnovers (they
	// correlate through playing volume, so every scorer is a trade-off):
	// even this tiny instance yields a Pareto set nobody would browse.
	full := dataset.NBA(rand.New(rand.NewSource(seed)))
	sub := make([]feature.Item, 16)
	for i := range sub {
		p := full[i*13]
		sub[i] = feature.Item{ID: i, Name: p.Name,
			Values: []float64{p.Values[2], p.Values[10]}} // points, turnovers
	}
	skyProfile := feature.SimpleProfile(feature.AggSum, feature.AggSum)
	subSp, err := feature.NewSpace(sub, skyProfile, 3)
	if err != nil {
		log.Fatal(err)
	}
	sky, err := skyline.Packages(subSp,
		[]skyline.Direction{skyline.Larger, skyline.Smaller}, 0)
	if err != nil {
		log.Fatal(err)
	}
	total := pkgspace.Count(16, 3)
	fmt.Printf("skyline baseline (points vs turnovers): %d Pareto-optimal teams out of %d (16 players, φ=3)\n",
		len(sky), total)
}

func addPref(g *prefgraph.Graph, sp *feature.Space, winner, loser pkgspace.Package) {
	if err := g.AddPreference(winner, pkgspace.Vector(sp, winner), loser, pkgspace.Vector(sp, loser)); err != nil {
		log.Fatal(err)
	}
}

func roster(sp *feature.Space, p pkgspace.Package) string {
	s := ""
	for i, id := range p.IDs {
		if i > 0 {
			s += ", "
		}
		s += sp.Items[id].Name
	}
	return s
}
