// Playlist demonstrates the full elicitation loop on a music-playlist
// scenario (the paper's Last.fm motivation): songs have price, average
// rating, play count and duration; a package is a playlist of up to six
// songs. A simulated listener with a hidden taste clicks through slates
// until the system's playlist recommendations stabilize.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"toppkg/internal/core"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
	"toppkg/internal/simulate"
)

const (
	nSongs = 800
	seed   = 7
)

func main() {
	rng := rand.New(rand.NewSource(seed))
	songs := makeSongs(rng)

	// Profile: total price (sum), average rating (avg), total play count
	// (sum, a popularity proxy), and max duration (long epics stand out).
	profile := feature.MustProfile(4,
		feature.Entry{Feature: 0, Agg: feature.AggSum}, // price
		feature.Entry{Feature: 1, Agg: feature.AggAvg}, // rating
		feature.Entry{Feature: 2, Agg: feature.AggSum}, // plays
		feature.Entry{Feature: 3, Agg: feature.AggMax}, // duration
	)

	eng, err := core.New(core.Config{
		Items:          songs,
		Profile:        profile,
		MaxPackageSize: 6,
		K:              4,
		RandomCount:    4,
		Semantics:      ranking.EXP,
		SampleCount:    200,
		Seed:           seed,
		// Beam-bounded per-sample searches keep each round interactive.
		Search: search.Options{MaxQueue: 64, MaxAccessed: 200},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A price-sensitive listener who loves highly rated, popular songs:
	// the engine knows none of this.
	listener := &simulate.User{U: mustUtility(profile, []float64{-0.7, 0.8, 0.4, 0.1})}

	fmt.Println("playlist elicitation — hidden taste: cheap, well-rated, popular")
	fmt.Println(strings.Repeat("-", 64))
	prev := ""
	rngUser := rand.New(rand.NewSource(seed + 1))
	for round := 1; round <= 10; round++ {
		slate, err := eng.Recommend()
		if err != nil {
			log.Fatal(err)
		}
		top := slate.Recommended[0]
		fmt.Printf("round %2d: best playlist %-18s EXP=%.3f trueU=%.3f\n",
			round, top.Pkg, top.Score,
			listener.U.Score(pkgspace.Vector(eng.Space(), top.Pkg)))
		key := strings.Join(ranking.Signatures(slate.Recommended), ";")
		if key == prev {
			fmt.Println("recommendations stable — stopping.")
			break
		}
		prev = key
		pick := listener.Choose(eng.Space(), slate.All, rngUser)
		if err := eng.Click(slate.All[pick], slate.All); err != nil {
			log.Fatal(err)
		}
	}

	// Show the final playlist in human terms.
	slate, err := eng.Recommend()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal playlist:")
	var price, rating float64
	for _, id := range slate.Recommended[0].Pkg.IDs {
		s := eng.Space().Items[id]
		price += s.Values[0]
		rating += s.Values[1]
		fmt.Printf("  %-10s price $%.2f rating %.1f plays %.0fk dur %.0fs\n",
			s.Name, s.Values[0], s.Values[1]*5, s.Values[2]/1000, s.Values[3])
	}
	n := float64(slate.Recommended[0].Pkg.Size())
	fmt.Printf("total price $%.2f, avg rating %.2f/5\n", price, rating/n*5)
	st := eng.Stats()
	fmt.Printf("stats: %d feedbacks, %d samples replaced, %d active constraints\n",
		st.Feedback, st.SamplesReplaced, st.ConstraintsActive)
}

// makeSongs synthesizes a catalogue with realistic structure: ratings and
// plays correlate; price is mostly flat with premium outliers.
func makeSongs(rng *rand.Rand) []feature.Item {
	songs := make([]feature.Item, nSongs)
	for i := range songs {
		quality := rng.Float64()
		price := 0.99 + math.Floor(rng.Float64()*3)*0.3 // $0.99–$1.89 tiers
		rating := clamp(0.3+0.6*quality+rng.NormFloat64()*0.1, 0, 1)
		plays := math.Pow(quality, 2) * 90000 * (0.5 + rng.Float64())
		duration := 120 + rng.Float64()*360
		songs[i] = feature.Item{
			ID:     i,
			Name:   fmt.Sprintf("song%03d", i),
			Values: []float64{price, rating, plays, duration},
		}
	}
	return songs
}

func mustUtility(p *feature.Profile, w []float64) *feature.Utility {
	u, err := feature.NewUtility(p, w)
	if err != nil {
		panic(err)
	}
	return u
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
