// Command experiments regenerates the paper's evaluation figures (§5) on
// this reproduction and prints them as text tables.
//
// Usage:
//
//	experiments -fig 5                  # one figure: 4, 5, 6, 7, 8, quality
//	experiments -fig all -scale 0.2     # everything, at 20% of paper scale
//	experiments -fig 7 -csv out/        # also write CSV files
//
// Scale 1 approximates the paper's workload sizes (§5.2: 10000
// preferences, 5000 packages, 1000 samples, 100k-tuple datasets) and can
// take a long time; the default 0.2 preserves every comparison's shape in
// a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"toppkg/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: "+strings.Join(experiments.Names(), ", ")+", or all")
	scale := flag.Float64("scale", 0.2, "workload scale relative to the paper (1 = paper scale)")
	seed := flag.Int64("seed", 1, "random seed")
	csvDir := flag.String("csv", "", "directory to also write tables as CSV (created if missing)")
	verbose := flag.Bool("v", false, "progress output on stderr")
	flag.Parse()

	p := experiments.Params{Scale: *scale, Seed: *seed, Verbose: *verbose}

	names := []string{*fig}
	if *fig == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.Run(name, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, name, i, &tables[i]); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(experiment %s: %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}

func writeCSV(dir, name string, i int, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("fig%s_%d.csv", name, i))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}
