// Command topkpkg is an interactive-style demo of the package recommender:
// it generates (or synthesizes) a dataset, runs an elicitation session
// against a simulated user with a hidden utility function, and prints how
// the recommendations evolve with each click.
//
// Usage:
//
//	topkpkg -dataset nba -features 6 -k 5 -semantics exp -rounds 8
//	topkpkg -dataset uni -items 5000 -sampler mcmc -seed 3 -v
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
	"toppkg/internal/simulate"
)

func main() {
	var (
		kind     = flag.String("dataset", "nba", "dataset: uni, pwr, cor, ant, nba")
		items    = flag.Int("items", 2000, "item count (synthetic datasets)")
		features = flag.Int("features", 5, "feature count")
		phi      = flag.Int("phi", 5, "maximum package size φ")
		k        = flag.Int("k", 5, "recommended packages per slate")
		randomN  = flag.Int("random", 5, "random exploration packages per slate")
		samples  = flag.Int("samples", 500, "weight-vector samples")
		sem      = flag.String("semantics", "exp", "ranking semantics: exp, tkp, mpo")
		samplerF = flag.String("sampler", "mcmc", "sampler: rejection, importance, mcmc")
		rounds   = flag.Int("rounds", 8, "elicitation rounds")
		seed     = flag.Int64("seed", 1, "random seed")
		noise    = flag.Float64("noise", 0, "probability the simulated user clicks randomly")
		verbose  = flag.Bool("v", false, "print each slate")
	)
	flag.Parse()

	if err := run(*kind, *items, *features, *phi, *k, *randomN, *samples,
		*sem, *samplerF, *rounds, *seed, *noise, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "topkpkg:", err)
		os.Exit(1)
	}
}

func run(kind string, items, features, phi, k, randomN, samples int,
	sem, samplerF string, rounds int, seed int64, noise float64, verbose bool) error {
	rng := rand.New(rand.NewSource(seed))
	data, err := dataset.Generate(kind, items, features, rng)
	if err != nil {
		return err
	}
	semantics, err := ranking.ParseSemantics(sem)
	if err != nil {
		return err
	}
	profile := alternatingProfile(features)
	eng, err := core.New(core.Config{
		Items:          data,
		Profile:        profile,
		MaxPackageSize: phi,
		K:              k,
		RandomCount:    randomN,
		Semantics:      semantics,
		Sampler:        core.SamplerKind(samplerF),
		SampleCount:    samples,
		Seed:           seed,
		Search:         search.Options{MaxQueue: 64, MaxAccessed: 300},
	})
	if err != nil {
		return err
	}
	user := simulate.NewRandomUser(profile, rng)
	user.NoiseEps = noise

	fmt.Printf("dataset=%s items=%d features=%d φ=%d k=%d semantics=%s sampler=%s\n",
		kind, len(data), features, phi, k, semantics, samplerF)
	fmt.Printf("hidden user weights: %s\n\n", fmtVec(user.U.W))

	prevKey := ""
	for round := 1; round <= rounds; round++ {
		slate, err := eng.Recommend()
		if err != nil {
			return err
		}
		key := strings.Join(ranking.Signatures(slate.Recommended), ";")
		changed := "changed"
		if key == prevKey {
			changed = "stable"
		}
		prevKey = key
		fmt.Printf("round %d (%s):\n", round, changed)
		for i, r := range slate.Recommended {
			truth := user.U.Score(pkgspace.Vector(eng.Space(), r.Pkg))
			fmt.Printf("  #%d %-24s score=%.4f trueU=%.4f %s\n",
				i+1, r.Pkg.String(), r.Score, truth, names(eng.Space(), r.Pkg, 3))
		}
		if verbose {
			for i, p := range slate.Random {
				fmt.Printf("  r%d %-24s (exploration)\n", i+1, p.String())
			}
		}
		pick := user.Choose(eng.Space(), slate.All, rng)
		if pick < 0 {
			break
		}
		fmt.Printf("  user clicks %s\n\n", slate.All[pick])
		if err := eng.Click(slate.All[pick], slate.All); err != nil {
			return err
		}
	}
	st := eng.Stats()
	fmt.Printf("session stats: feedback=%d active_constraints=%d replaced=%d cycles_skipped=%d\n",
		st.Feedback, st.ConstraintsActive, st.SamplesReplaced, st.CyclesSkipped)
	return nil
}

// alternatingProfile mirrors the experiment harness: sum, avg, max, min
// cycling over the features.
func alternatingProfile(m int) *feature.Profile {
	cycle := []feature.Agg{feature.AggSum, feature.AggAvg, feature.AggMax, feature.AggMin}
	aggs := make([]feature.Agg, m)
	for i := range aggs {
		aggs[i] = cycle[i%len(cycle)]
	}
	return feature.SimpleProfile(aggs...)
}

func fmtVec(w []float64) string {
	parts := make([]string, len(w))
	for i, v := range w {
		parts[i] = fmt.Sprintf("%+.2f", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// names lists up to limit member names of a package.
func names(sp *feature.Space, p pkgspace.Package, limit int) string {
	var out []string
	for i, id := range p.IDs {
		if i >= limit {
			out = append(out, "…")
			break
		}
		out = append(out, sp.Items[id].Name)
	}
	return "[" + strings.Join(out, " ") + "]"
}
