package main

import "testing"

// TestValidatePartitionFlags pins the rejection path: an imbalance
// threshold below 1 must fail fast at startup (catalog.New enforces the
// same bound, but the flag error names the flag, not the config field).
func TestValidatePartitionFlags(t *testing.T) {
	for _, bad := range []float64{0.5, 0, -1} {
		if err := validatePartitionFlags(bad); err == nil {
			t.Errorf("validatePartitionFlags(%g) accepted an unsatisfiable threshold", bad)
		}
	}
	for _, good := range []float64{1, 1.5, 4, 100} {
		if err := validatePartitionFlags(good); err != nil {
			t.Errorf("validatePartitionFlags(%g) = %v, want nil", good, err)
		}
	}
}
