// Command serve runs the package recommender as a multi-session HTTP/JSON
// service — the integration style the paper describes (§1): each user's
// recommendations are fetched at login, clicks are posted back as implicit
// feedback, and learned session state survives eviction and restarts via
// snapshots. One process serves many concurrent sessions over a single
// shared catalogue index; residency is bounded by an LRU.
//
// Usage:
//
//	serve -addr :8080 -dataset nba -features 5 -capacity 1024 -snapshots ./sessions
//	curl localhost:8080/sessions/alice/recommend
//	curl -X POST localhost:8080/sessions/alice/click -d '{"chosen":[1,2],"shown":[[1,2],[3]]}'
//	curl localhost:8080/sessions            # list resident sessions
//	curl localhost:8080/healthz             # liveness + manager counters
//
// With -mutable-catalog the item set is live: admin requests mutate it and
// a background rebuilder swaps in fresh epochs without blocking serving:
//
//	serve -mutable-catalog -rebuild-coalesce 20ms
//	curl -X POST localhost:8080/catalog/items -d '{"items":[{"id":9000,"name":"new","values":[1,2,3,4,5]}]}'
//	curl -X DELETE localhost:8080/catalog/items/9000
//	curl localhost:8080/catalog             # epoch, item count, rebuild stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registers debug handlers on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
	"toppkg/internal/server"
	"toppkg/internal/session"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		kind     = flag.String("dataset", "nba", "dataset: uni, pwr, cor, ant, nba")
		items    = flag.Int("items", 2000, "item count (synthetic datasets)")
		features = flag.Int("features", 5, "feature count")
		phi      = flag.Int("phi", 5, "maximum package size")
		k        = flag.Int("k", 5, "recommended packages per slate")
		samples  = flag.Int("samples", 500, "weight-vector samples")
		sem      = flag.String("semantics", "exp", "ranking semantics: exp, tkp, mpo")
		psi      = flag.Float64("psi", 1, "feedback-noise tolerance (§7): a weight sample violating x preferences survives w.p. (1-psi)^x; 1 = hard constraints")
		capacity = flag.Int("capacity", session.DefaultCapacity, "resident sessions before LRU eviction")
		snapdir  = flag.String("snapshots", "", "directory persisting evicted sessions (empty: evicted state is dropped); shorthand for -store dir:DIR")
		storeSpc = flag.String("store", "", "session store spec, scheme:rest (schemes: "+strings.Join(session.StoreSchemes(), ", ")+"); shards behind one gateway must share a store for rebalancing")
		shardID  = flag.String("shard-id", "", "this process's identity in a sharded deployment: reported in /healthz and required to match DrainRequest.Self on /admin/drain")
		maxBody  = flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
		restore  = flag.String("restore", "", "path of a session snapshot to restore into the default session")
		seed     = flag.Int64("seed", 1, "random seed")
		cache    = flag.Int("cache", ranking.DefaultCacheSize, "shared Top-k-Pkg result cache entries (negative disables)")
		quantum  = flag.Float64("quantum", 0, "weight quantization step for dedup/caching (0 = exact, bit-identical slates)")
		par      = flag.Int("parallelism", -1, "per-sample search workers per recommend (negative = GOMAXPROCS)")
		evictW   = flag.Int("evict-workers", session.DefaultEvictWorkers, "background snapshot writers for eviction (negative = evict synchronously)")
		mutable  = flag.Bool("mutable-catalog", false, "serve a live catalogue: enable POST/DELETE /catalog/items with epoch-swapped index rebuilds")
		coalesce = flag.Duration("rebuild-coalesce", catalog.DefaultCoalesce, "how long the rebuilder waits for a mutation burst to settle before building the next epoch (negative: rebuild synchronously on every batch)")
		deltaThr = flag.Int("delta-threshold", catalog.DefaultDeltaThreshold, "max distinct items changed since the current epoch for the next build to take the incremental delta path (negative disables delta builds)")
		partK    = flag.Int("partition-clusters", 0, "sketch-refine cluster count for the live catalogue's partitioned search (0 = auto ~sqrt(n) once the catalogue is large enough; negative disables partitioning); requires -mutable-catalog")
		partImb  = flag.Float64("partition-recluster-imbalance", catalog.DefaultReclusterImbalance, "partition imbalance threshold past which a delta build re-clusters from scratch (must be >= 1); requires -mutable-catalog")
		pprof    = flag.String("pprof", "", "mount net/http/pprof on this separate listen address (e.g. localhost:6060); empty disables")
		readTO   = flag.Duration("read-timeout", server.DefaultReadTimeout, "max duration for reading an entire request incl. body (negative disables)")
		writeTO  = flag.Duration("write-timeout", server.DefaultWriteTimeout, "max duration for writing a response (negative disables)")
		idleTO   = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "how long a keep-alive connection may sit idle (negative disables)")
		headerTO = flag.Duration("read-header-timeout", server.DefaultReadHeaderTimeout, "max duration for reading request headers (negative disables)")
	)
	flag.Parse()

	// Fail fast on nonsensical sizing instead of panicking (or silently
	// selecting defaults) deep inside core.NewShared.
	if *features <= 0 {
		log.Fatalf("-features must be positive, got %d", *features)
	}
	if *phi <= 0 {
		log.Fatalf("-phi must be positive, got %d", *phi)
	}
	if *k <= 0 {
		log.Fatalf("-k must be positive, got %d", *k)
	}
	if *samples <= 0 {
		log.Fatalf("-samples must be positive, got %d", *samples)
	}
	if *psi <= 0 || *psi > 1 {
		// core maps Psi 0 to the noise-free default; an explicit 0 here is
		// almost certainly a misunderstanding of the knob, so reject it.
		log.Fatalf("-psi must be in (0, 1], got %g", *psi)
	}
	if *items <= 0 && *kind != "nba" && *kind != "NBA" {
		// The NBA synthesizer has a fixed cardinality and ignores -items.
		log.Fatalf("-items must be positive for synthetic datasets, got %d", *items)
	}
	if err := validatePartitionFlags(*partImb); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	data, err := dataset.Generate(*kind, *items, *features, rng)
	if err != nil {
		log.Fatal(err)
	}
	semantics, err := ranking.ParseSemantics(*sem)
	if err != nil {
		log.Fatal(err)
	}
	cycle := []feature.Agg{feature.AggSum, feature.AggAvg, feature.AggMax, feature.AggMin}
	aggs := make([]feature.Agg, *features)
	for i := range aggs {
		aggs[i] = cycle[i%len(cycle)]
	}
	cacheSize := *cache
	if cacheSize == 0 {
		// core treats 0 as "default size"; map an explicit -cache 0 to the
		// smallest real cache instead of silently selecting the default.
		cacheSize = 1
	}
	cfg := core.Config{
		Items:           data,
		Profile:         feature.SimpleProfile(aggs...),
		MaxPackageSize:  *phi,
		K:               *k,
		Semantics:       semantics,
		SampleCount:     *samples,
		Psi:             *psi,
		Seed:            *seed,
		Parallelism:     *par,
		Search:          search.Options{MaxQueue: 128, MaxAccessed: 500},
		SearchCacheSize: cacheSize,
		WeightQuantum:   *quantum,
	}
	var (
		shared *core.Shared
		cat    *catalog.Catalog
	)
	if *mutable {
		cat, err = catalog.New(catalog.Config{
			Profile:                     cfg.Profile,
			MaxPackageSize:              *phi,
			Items:                       data,
			Coalesce:                    *coalesce,
			DeltaThreshold:              *deltaThr,
			PartitionClusters:           *partK,
			PartitionReclusterImbalance: *partImb,
		})
		if err != nil {
			log.Fatal(err)
		}
		shared, err = core.NewLiveShared(cfg, cat)
	} else {
		shared, err = core.NewShared(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *snapdir != "" && *storeSpc != "" {
		log.Fatal("-snapshots and -store are two spellings of the same thing; set only one")
	}
	spec := *storeSpc
	if *snapdir != "" {
		spec = *snapdir // bare path opens as a DirStore
	}
	store, err := session.OpenStore(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *shardID != "" && !session.ValidID(*shardID) {
		log.Fatalf("-shard-id %q is not a valid identifier", *shardID)
	}
	mgr, err := session.NewManager(session.Config{Shared: shared, Capacity: *capacity, Store: store, EvictWorkers: *evictW})
	if err != nil {
		log.Fatal(err)
	}
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			log.Fatal(err)
		}
		snap, err := core.ReadSnapshot(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		var droppedItems, droppedPrefs int
		err = mgr.Do(server.DefaultSessionID, func(eng *core.Engine) error {
			if err := eng.Restore(snap); err != nil {
				return err
			}
			droppedItems, droppedPrefs = eng.LastRestoreDrops()
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		if droppedItems > 0 || droppedPrefs > 0 {
			log.Printf("restored default session from %s (snapshot v%d predates the current catalogue: dropped %d vanished items, %d preferences)",
				*restore, snap.Version, droppedItems, droppedPrefs)
		} else {
			log.Printf("restored default session from %s", *restore)
		}
	}
	// Connection timeouts apply to every listener: one stalled client must
	// never hold a connection (and a session lock window) indefinitely.
	timeouts := server.Timeouts{ReadHeader: *headerTO, Read: *readTO, Write: *writeTO, Idle: *idleTO}
	if *pprof != "" {
		// A separate listener keeps the profiling surface off the serving
		// port (and off any load balancer): the blank net/http/pprof import
		// registers its handlers on http.DefaultServeMux. It gets the same
		// timeouts as the serving listener; raise -write-timeout when
		// collecting profiles longer than it.
		go func() {
			log.Printf("pprof listening on %s/debug/pprof/", *pprof)
			psrv := server.NewHTTPServer(*pprof, nil, timeouts)
			if err := psrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}
	mode := "static catalogue"
	if *mutable {
		mode = "mutable catalogue"
	}
	fmt.Printf("serving %s (%d items, %d features, %s) on %s, capacity %d sessions\n",
		*kind, len(data), *features, mode, *addr, *capacity)
	srv := server.NewHTTPServer(*addr, server.New(mgr, server.Options{MaxBodyBytes: *maxBody, Catalog: cat, ShardID: *shardID}), timeouts)
	// Graceful shutdown: drain HTTP, quiesce the catalogue (every batch
	// acknowledged with 202/200 reaches a built epoch and the rebuilder
	// goroutine exits), then flush resident sessions to the snapshot store,
	// so learned state survives restarts, not just LRU pressure.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		log.Printf("shutting down: flushing %d resident sessions", mgr.Len())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if cat != nil {
			cat.Close()
		}
		mgr.Shutdown()
		mgr.Close()
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done // ListenAndServe returned because Shutdown ran; wait out the flush
}

// validatePartitionFlags fails fast on nonsensical partition tuning, with
// the same contract catalog.New enforces: any cluster count is meaningful
// (0 auto, negative disables), but an imbalance threshold below 1 can
// never be satisfied (the fullest cluster is never smaller than the
// balanced size), so every delta build would re-cluster from scratch.
func validatePartitionFlags(imbalance float64) error {
	if imbalance < 1 {
		return fmt.Errorf("-partition-recluster-imbalance must be >= 1, got %g", imbalance)
	}
	return nil
}
