// Command serve runs the package recommender as an HTTP/JSON service for a
// single user session — the integration style the paper describes (§1):
// recommendations are fetched at login, clicks are posted back as implicit
// feedback, and the learned session state can be snapshotted and restored.
//
// Usage:
//
//	serve -addr :8080 -dataset nba -features 5
//	curl localhost:8080/recommend
//	curl -X POST localhost:8080/click -d '{"chosen":[1,2],"shown":[[1,2],[3]]}'
//	curl localhost:8080/snapshot > session.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"

	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
	"toppkg/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		kind     = flag.String("dataset", "nba", "dataset: uni, pwr, cor, ant, nba")
		items    = flag.Int("items", 2000, "item count (synthetic datasets)")
		features = flag.Int("features", 5, "feature count")
		phi      = flag.Int("phi", 5, "maximum package size")
		k        = flag.Int("k", 5, "recommended packages per slate")
		samples  = flag.Int("samples", 500, "weight-vector samples")
		sem      = flag.String("semantics", "exp", "ranking semantics: exp, tkp, mpo")
		snapshot = flag.String("restore", "", "path of a session snapshot to restore")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	data, err := dataset.Generate(*kind, *items, *features, rng)
	if err != nil {
		log.Fatal(err)
	}
	semantics, err := ranking.ParseSemantics(*sem)
	if err != nil {
		log.Fatal(err)
	}
	cycle := []feature.Agg{feature.AggSum, feature.AggAvg, feature.AggMax, feature.AggMin}
	aggs := make([]feature.Agg, *features)
	for i := range aggs {
		aggs[i] = cycle[i%len(cycle)]
	}
	eng, err := core.New(core.Config{
		Items:          data,
		Profile:        feature.SimpleProfile(aggs...),
		MaxPackageSize: *phi,
		K:              *k,
		Semantics:      semantics,
		SampleCount:    *samples,
		Seed:           *seed,
		Parallelism:    -1,
		Search:         search.Options{MaxQueue: 128, MaxAccessed: 500},
	})
	if err != nil {
		log.Fatal(err)
	}
	if *snapshot != "" {
		f, err := os.Open(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Load(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("restored session from %s", *snapshot)
	}
	fmt.Printf("serving %s (%d items, %d features) on %s\n", *kind, len(data), *features, *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(eng)))
}
