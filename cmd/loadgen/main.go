// Command loadgen drives a serve-compatible endpoint with realistic
// whole-system traffic: a zipfian population of sessions running
// episodic recommend/click/feedback loops (the elicitation shape of
// §5.6), optionally with background catalogue churn, and reports
// per-route latency quantiles, error counts, and throughput as JSON —
// the records cmd/benchjson folds into BENCH_serve.json.
//
// Two modes:
//
//	loadgen -target http://host:8080 -duration 30s    # external server
//	loadgen -duration 30s -churn 50ms                 # self-contained:
//	    spins the full serving stack in-process on a loopback listener,
//	    so committed benchmark numbers are reproducible from one command.
//
// The JSON report goes to stdout (pipe it into benchjson -serve); a
// human summary goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/loadgen"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
	"toppkg/internal/server"
	"toppkg/internal/session"
	"toppkg/internal/shard"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of the server under test (empty: serve in-process)")
		name        = flag.String("name", "", "label for the run record (default: static or mutating)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		sessions    = flag.Int("sessions", 100000, "simulated session population")
		zipfS       = flag.Float64("zipf-s", 1.07, "zipf skew of session popularity (> 1)")
		concurrency = flag.Int("concurrency", 16, "closed-loop workers")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0: closed loop)")
		mix         = flag.String("mix", "6:3:1", "recommend:click:feedback weights")
		seed        = flag.Int64("seed", 1, "traffic seed (session decisions derive from session IDs)")
		churn       = flag.Duration("churn", 0, "catalogue mutation batch interval (0: static catalogue)")
		churnBatch  = flag.Int("churn-batch", 8, "items repriced per churn batch")
		churnItems  = flag.Int("churn-items", 1000, "stable-ID range repriced by churn")
		shards      = flag.Int("shards", 1, "in-process backend count: > 1 stands up N serve stacks behind a shard gateway and drives the gateway (ignored with -target)")

		// Self-serve mode (when -target is empty).
		kind     = flag.String("dataset", "uni", "in-process dataset: uni, pwr, cor, ant, nba")
		items    = flag.Int("items", 5000, "in-process item count")
		features = flag.Int("features", 5, "feature count (also the churn value count against external targets)")
		phi      = flag.Int("phi", 3, "in-process maximum package size")
		k        = flag.Int("k", 5, "in-process recommended packages per slate")
		samples  = flag.Int("samples", 100, "in-process weight-vector samples")
		sem      = flag.String("semantics", "exp", "in-process ranking semantics")
		psi      = flag.Float64("psi", 0.9, "in-process feedback-noise tolerance (§7); 1 = noise-free")
		quantum  = flag.Float64("quantum", 0.05, "in-process weight quantization step (shares the result cache across sessions; 0 = exact)")
		cache    = flag.Int("cache", ranking.DefaultCacheSize, "in-process shared result cache entries (negative disables)")
	)
	flag.Parse()

	var mr, mc, mf int
	if _, err := fmt.Sscanf(*mix, "%d:%d:%d", &mr, &mc, &mf); err != nil {
		log.Fatalf("-mix must be R:C:F, got %q", *mix)
	}

	base := *target
	var shutdown func()
	if base == "" {
		var err error
		opts := selfOpts{
			kind: *kind, items: *items, features: *features, phi: *phi, k: *k,
			samples: *samples, sem: *sem, psi: *psi, quantum: *quantum, cache: *cache,
			seed: *seed, sessions: *sessions, mutable: *churn > 0,
		}
		if *shards > 1 {
			base, shutdown, err = selfServeSharded(opts, *shards)
		} else {
			base, shutdown, err = selfServe(opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:      base,
		Sessions:     *sessions,
		ZipfS:        *zipfS,
		Concurrency:  *concurrency,
		Rate:         *rate,
		Duration:     *duration,
		MixRecommend: mr,
		MixClick:     mc,
		MixFeedback:  mf,
		Churn:        *churn,
		ChurnBatch:   *churnBatch,
		ChurnItems:   *churnItems,
		Features:     *features,
		Seed:         *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *target == "" && *shards > 1 {
		rep.Shards = *shards
	}
	rep.Name = *name
	if rep.Name == "" {
		rep.Name = "static"
		if *churn > 0 {
			rep.Name = "mutating"
		}
		if rep.Shards > 1 {
			rep.Name = "sharded-" + rep.Name
			if rep.Name == "sharded-static" {
				rep.Name = "sharded"
			}
		}
	}

	summarize(rep)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.Errors > 0 || rep.Non2xx > 0 {
		os.Exit(1)
	}
}

// selfOpts sizes the in-process serving stack.
type selfOpts struct {
	kind                                    string
	items, features, phi, k, samples, cache int
	sem                                     string
	psi, quantum                            float64
	seed                                    int64
	sessions                                int
	mutable                                 bool
}

// stack is one in-process serving stack on a loopback listener.
type stack struct {
	url  string
	stop func()
}

// buildStack stands one full serving stack up on a loopback listener:
// catalogue (mutable when churn is on), shared core, session manager
// (over the given store, shared across shards in sharded mode), HTTP API
// with the default connection timeouts. Every stack built from the same
// selfOpts holds an identical catalogue — dataset generation is seeded —
// which is exactly the replicated-catalogue premise of a sharded
// deployment.
func buildStack(o selfOpts, shardID string, store session.Store) (*stack, error) {
	rng := rand.New(rand.NewSource(o.seed))
	data, err := dataset.Generate(o.kind, o.items, o.features, rng)
	if err != nil {
		return nil, err
	}
	semantics, err := ranking.ParseSemantics(o.sem)
	if err != nil {
		return nil, err
	}
	cycle := []feature.Agg{feature.AggSum, feature.AggAvg, feature.AggMax, feature.AggMin}
	aggs := make([]feature.Agg, o.features)
	for i := range aggs {
		aggs[i] = cycle[i%len(cycle)]
	}
	cacheSize := o.cache
	if cacheSize == 0 {
		cacheSize = 1 // core treats 0 as "default"; honor an explicit -cache 0
	}
	cfg := core.Config{
		Items:           data,
		Profile:         feature.SimpleProfile(aggs...),
		MaxPackageSize:  o.phi,
		K:               o.k,
		Semantics:       semantics,
		SampleCount:     o.samples,
		Psi:             o.psi,
		WeightQuantum:   o.quantum,
		SearchCacheSize: cacheSize,
		Seed:            o.seed,
		Search:          search.Options{MaxQueue: 128, MaxAccessed: 500},
	}
	var (
		shared *core.Shared
		cat    *catalog.Catalog
	)
	if o.mutable {
		cat, err = catalog.New(catalog.Config{
			Profile:        cfg.Profile,
			MaxPackageSize: o.phi,
			Items:          data,
			Coalesce:       catalog.DefaultCoalesce,
			DeltaThreshold: catalog.DefaultDeltaThreshold,
		})
		if err != nil {
			return nil, err
		}
		shared, err = core.NewLiveShared(cfg, cat)
	} else {
		shared, err = core.NewShared(cfg)
	}
	if err != nil {
		return nil, err
	}
	// Capacity above the population: a mid-run eviction resets a session's
	// pinned feedback epoch, which under churn can fail stale clicks —
	// benchmark runs measure serving latency, not eviction policy.
	mgr, err := session.NewManager(session.Config{Shared: shared, Capacity: o.sessions + 1, Store: store})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.NewHTTPServer(ln.Addr().String(), server.New(mgr, server.Options{Catalog: cat, ShardID: shardID}), server.Timeouts{})
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("self-serve listener: %v", err)
		}
	}()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if cat != nil {
			cat.Close()
		}
		mgr.Close()
	}
	return &stack{url: "http://" + ln.Addr().String(), stop: stop}, nil
}

// selfServe is the single-process mode: one stack, driven directly.
func selfServe(o selfOpts) (string, func(), error) {
	st, err := buildStack(o, "", nil)
	if err != nil {
		return "", nil, err
	}
	mode := "static"
	if o.mutable {
		mode = "mutable"
	}
	fmt.Fprintf(os.Stderr, "self-serving %s (%d items, %d features, %s catalogue) on %s\n",
		o.kind, o.items, o.features, mode, st.url)
	return st.url, st.stop, nil
}

// selfServeSharded stands up n identical backend stacks plus a shard
// gateway on its own loopback listener and drives the gateway — the
// whole sharded topology in one process, so `make bench-serve-sharded`
// needs no orchestration. The backends share one in-memory session store
// (the moral equivalent of shards pointing -store at the same location),
// so rebalancing semantics hold here too.
func selfServeSharded(o selfOpts, n int) (string, func(), error) {
	store := session.NewMemStore()
	backends := make([]shard.Backend, 0, n)
	stacks := make([]*stack, 0, n)
	fail := func(err error) (string, func(), error) {
		for _, st := range stacks {
			st.stop()
		}
		return "", nil, err
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		st, err := buildStack(o, id, store)
		if err != nil {
			return fail(err)
		}
		stacks = append(stacks, st)
		backends = append(backends, shard.Backend{ID: id, URL: st.url})
	}
	gw, err := shard.New(shard.Config{}, backends)
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		return fail(err)
	}
	srv := server.NewHTTPServer(ln.Addr().String(), gw, server.Timeouts{})
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("gateway listener: %v", err)
		}
	}()
	mode := "static"
	if o.mutable {
		mode = "mutable"
	}
	fmt.Fprintf(os.Stderr, "self-serving %s (%d items, %d features, %s catalogue) on %d shards behind gateway %s\n",
		o.kind, o.items, o.features, mode, n, "http://"+ln.Addr().String())
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		gw.Close()
		for _, st := range stacks {
			st.stop()
		}
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func summarize(rep *loadgen.Report) {
	fmt.Fprintf(os.Stderr, "%s: %d req in %.1fs (%.0f req/s), %d errors, %d non-2xx, %d shed\n",
		rep.Name, rep.Total, rep.DurationSec, rep.ThroughputRPS, rep.Errors, rep.Non2xx, rep.Shed)
	names := make([]string, 0, len(rep.Routes))
	for n := range rep.Routes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rr := rep.Routes[n]
		if rr.Count == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-16s %7d req  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  max %7.2fms\n",
			n, rr.Count, rr.Latency.P50Ms, rr.Latency.P95Ms, rr.Latency.P99Ms, rr.Latency.MaxMs)
	}
}
