// Command shardgw fronts N serve backends as one logical recommender.
// Session traffic is consistent-hash routed by session ID to its owner
// shard; catalogue mutations are sequenced into a replicated log and
// fanned out to every shard in order, so all shards converge on the same
// catalogue content (verify via idmap_hash in each shard's /healthz, or
// the gateway's own GET /catalog convergence report).
//
// Usage (backends first, each with its shard identity and a shared
// session store so rebalancing can move sessions between them):
//
//	serve -addr :7101 -shard-id s0 -store dir:/var/lib/toppkg/sessions -mutable-catalog &
//	serve -addr :7102 -shard-id s1 -store dir:/var/lib/toppkg/sessions -mutable-catalog &
//	shardgw -addr :8080 -backend s0=http://127.0.0.1:7101 -backend s1=http://127.0.0.1:7102
//
//	curl localhost:8080/sessions/alice/recommend   # routed to alice's shard
//	curl localhost:8080/catalog                    # cross-shard convergence report
//	curl localhost:8080/healthz                    # ring + per-shard health
//
// Membership changes at runtime (drains moved sessions through the
// shared store before the ring swaps):
//
//	curl -X POST localhost:8080/gateway/shards -d '{"id":"s2","url":"http://127.0.0.1:7103"}'
//	curl -X DELETE localhost:8080/gateway/shards/s2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"toppkg/internal/server"
	"toppkg/internal/shard"
)

// backendFlags collects repeated -backend id=url values.
type backendFlags []shard.Backend

func (b *backendFlags) String() string {
	parts := make([]string, len(*b))
	for i, be := range *b {
		parts[i] = be.ID + "=" + be.URL
	}
	return strings.Join(parts, ",")
}

func (b *backendFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*b = append(*b, shard.Backend{ID: id, URL: url})
	return nil
}

func main() {
	var backends backendFlags
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		vnodes   = flag.Int("vnodes", shard.DefaultVNodes, "virtual nodes per shard on the hash ring")
		retries  = flag.Int("retries", shard.DefaultRetries, "proxy retry attempts on connection failure")
		backoff  = flag.Duration("retry-backoff", shard.DefaultRetryBackoff, "first proxy retry delay (doubles per attempt)")
		probeIvl = flag.Duration("probe-interval", shard.DefaultProbeInterval, "background shard health probe interval")
		applyTO  = flag.Duration("apply-timeout", shard.DefaultApplyTimeout, "bound on ?wait=1 mutations and new-shard log catch-up")
		drainTO  = flag.Duration("drain-timeout", shard.DefaultDrainTimeout, "bound on in-flight draining during shard removal")
		maxBody  = flag.Int64("max-body", shard.DefaultMaxBodyBytes, "proxied request body size limit in bytes")
		clientTO = flag.Duration("backend-timeout", 10*time.Second, "per-request timeout towards backends")
		readTO   = flag.Duration("read-timeout", server.DefaultReadTimeout, "max duration for reading an entire request incl. body (negative disables)")
		writeTO  = flag.Duration("write-timeout", server.DefaultWriteTimeout, "max duration for writing a response (negative disables)")
		idleTO   = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "how long a keep-alive connection may sit idle (negative disables)")
		headerTO = flag.Duration("read-header-timeout", server.DefaultReadHeaderTimeout, "max duration for reading request headers (negative disables)")
	)
	flag.Var(&backends, "backend", "backend shard as id=url (repeat per shard); id must match the backend's -shard-id")
	flag.Parse()

	if len(backends) == 0 {
		log.Fatal("at least one -backend id=url is required")
	}
	gw, err := shard.New(shard.Config{
		VNodes:        *vnodes,
		Retries:       *retries,
		RetryBackoff:  *backoff,
		ProbeInterval: *probeIvl,
		ApplyTimeout:  *applyTO,
		DrainTimeout:  *drainTO,
		MaxBodyBytes:  *maxBody,
		Client:        &http.Client{Timeout: *clientTO},
	}, backends)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]string, len(backends))
	for i, b := range backends {
		ids[i] = b.ID
	}
	fmt.Printf("gateway on %s fronting %d shards (%s), %d vnodes each\n",
		*addr, len(backends), strings.Join(ids, ", "), *vnodes)
	timeouts := server.Timeouts{ReadHeader: *headerTO, Read: *readTO, Write: *writeTO, Idle: *idleTO}
	srv := server.NewHTTPServer(*addr, gw, timeouts)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		log.Print("shutting down gateway")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx) // drain client connections first
		gw.Close()            // then stop appliers and the prober
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
