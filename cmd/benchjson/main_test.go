package main

import (
	"math"
	"testing"

	"toppkg/internal/hdrhist"
	"toppkg/internal/loadgen"
)

var sample = []string{
	"goos: linux",
	"goarch: amd64",
	"pkg: toppkg",
	"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
	"BenchmarkFig6TopKPkg/uni-4         \t     100\t  12345678 ns/op\t 2048 B/op\t      12 allocs/op",
	"BenchmarkFig8PostFeedbackRecommend/nocache-4 \t      20\t2009556786 ns/op\t         0.2310 dedup\t         0 hits/op\t       161.5 searches/op",
	"BenchmarkFig8PostFeedbackRecommend/cached-4  \t      20\t 262562438 ns/op\t         0.2310 dedup\t       125.0 hits/op\t        36.45 searches/op",
	"BenchmarkChurnRecommend/static-4   \t      20\t  50000000 ns/op\t         0 swaps/op",
	"BenchmarkChurnRecommend/mutating-4 \t      20\t 100000000 ns/op\t         0.5000 swaps/op\t       190.0 mut/s",
	"BenchmarkEpochBuild/full-4         \t      50\t  10000000 ns/op\t         1.000 delta/op",
	"BenchmarkEpochBuild/delta-4        \t      50\t   1000000 ns/op\t         1.000 delta/op",
	"PASS",
	"ok  \ttoppkg\t51.485s",
}

func TestParse(t *testing.T) {
	benches, cpu := parse(sample)
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(benches) != 7 {
		t.Fatalf("parsed %d benchmarks, want 7", len(benches))
	}
	b := benches[0]
	if b.Name != "Fig6TopKPkg/uni" || b.Iterations != 100 || b.NsPerOp != 12345678 {
		t.Errorf("first bench: %+v", b)
	}
	if b.Metrics["B/op"] != 2048 || b.Metrics["allocs/op"] != 12 {
		t.Errorf("benchmem metrics: %+v", b.Metrics)
	}
	if got := benches[2].Metrics["hits/op"]; got != 125 {
		t.Errorf("hits/op = %g", got)
	}
}

func TestCompare(t *testing.T) {
	benches, _ := parse(sample)
	cs := compare(benches)
	if len(cs) != 3 {
		t.Fatalf("got %d comparisons, want 3", len(cs))
	}
	c := cs[0]
	if c.Name != "Fig8PostFeedbackRecommend" {
		t.Errorf("name = %q", c.Name)
	}
	if math.Abs(c.Speedup-2009556786.0/262562438.0) > 1e-9 {
		t.Errorf("speedup = %g", c.Speedup)
	}
	if c.AfterHitsPerOp != 125 || c.BaselineSearches != 161.5 || c.DedupRatio != 0.231 {
		t.Errorf("metrics not threaded through: %+v", c)
	}
	churn := cs[1]
	if churn.Name != "ChurnRecommend" {
		t.Errorf("churn comparison name = %q", churn.Name)
	}
	if math.Abs(churn.Speedup-0.5) > 1e-9 {
		t.Errorf("churn speedup = %g, want 0.5 (throughput retained)", churn.Speedup)
	}
	epoch := cs[2]
	if epoch.Name != "EpochBuild" {
		t.Errorf("epoch comparison name = %q", epoch.Name)
	}
	if math.Abs(epoch.Speedup-10) > 1e-9 {
		t.Errorf("epoch build speedup = %g, want 10", epoch.Speedup)
	}
}

// serveRun builds a minimal loadgen run record for comparison tests.
func serveRun(name string, rps float64, routes map[string][2]float64) loadgen.Report {
	r := loadgen.Report{Name: name, ThroughputRPS: rps, Routes: map[string]loadgen.RouteReport{}}
	for route, pcts := range routes {
		r.Routes[route] = loadgen.RouteReport{
			Count:   100,
			Latency: hdrhist.Snapshot{Count: 100, P50Ms: pcts[0], P99Ms: pcts[1]},
		}
	}
	return r
}

func TestCompareServe(t *testing.T) {
	runs := []loadgen.Report{
		serveRun("static", 100, map[string][2]float64{
			"recommend": {10, 40},
			"click":     {1, 4},
			"healthz":   {0.1, 0.2}, // harness pre-flight: must not be compared
		}),
		serveRun("mutating", 80, map[string][2]float64{
			"recommend": {12, 60},
			"click":     {1, 5},
			"healthz":   {0.1, 0.2},
			"feedback":  {2, 8}, // only in one run: must not be compared
		}),
	}
	cs, retained := compareServe(runs)
	if math.Abs(retained-0.8) > 1e-9 {
		t.Errorf("throughput retained = %g, want 0.8", retained)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d comparisons, want 2 (click, recommend): %+v", len(cs), cs)
	}
	if cs[0].Route != "click" || cs[1].Route != "recommend" {
		t.Errorf("routes not sorted: %+v", cs)
	}
	rec := cs[1]
	if rec.StaticP99Ms != 40 || rec.MutatingP99Ms != 60 || math.Abs(rec.P99Ratio-1.5) > 1e-9 {
		t.Errorf("recommend comparison: %+v", rec)
	}
}

func TestCompareServeNeedsBothVariants(t *testing.T) {
	cs, retained := compareServe([]loadgen.Report{serveRun("static", 100, nil)})
	if cs != nil || retained != 0 {
		t.Errorf("comparison from static alone: %+v, %g", cs, retained)
	}
}

func TestUpsertRun(t *testing.T) {
	runs := upsertRun(nil, serveRun("static", 100, nil))
	runs = upsertRun(runs, serveRun("mutating", 80, nil))
	runs = upsertRun(runs, serveRun("static", 120, nil))
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2: %+v", len(runs), runs)
	}
	if runs[0].Name != "static" || runs[0].ThroughputRPS != 120 {
		t.Errorf("same-name run not replaced: %+v", runs[0])
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	benches, _ := parse([]string{"", "random text", "Benchmark bad line"})
	if len(benches) != 0 {
		t.Errorf("parsed garbage: %+v", benches)
	}
}
