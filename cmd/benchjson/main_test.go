package main

import (
	"math"
	"testing"
)

var sample = []string{
	"goos: linux",
	"goarch: amd64",
	"pkg: toppkg",
	"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
	"BenchmarkFig6TopKPkg/uni-4         \t     100\t  12345678 ns/op\t 2048 B/op\t      12 allocs/op",
	"BenchmarkFig8PostFeedbackRecommend/nocache-4 \t      20\t2009556786 ns/op\t         0.2310 dedup\t         0 hits/op\t       161.5 searches/op",
	"BenchmarkFig8PostFeedbackRecommend/cached-4  \t      20\t 262562438 ns/op\t         0.2310 dedup\t       125.0 hits/op\t        36.45 searches/op",
	"BenchmarkChurnRecommend/static-4   \t      20\t  50000000 ns/op\t         0 swaps/op",
	"BenchmarkChurnRecommend/mutating-4 \t      20\t 100000000 ns/op\t         0.5000 swaps/op\t       190.0 mut/s",
	"BenchmarkEpochBuild/full-4         \t      50\t  10000000 ns/op\t         1.000 delta/op",
	"BenchmarkEpochBuild/delta-4        \t      50\t   1000000 ns/op\t         1.000 delta/op",
	"PASS",
	"ok  \ttoppkg\t51.485s",
}

func TestParse(t *testing.T) {
	benches, cpu := parse(sample)
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(benches) != 7 {
		t.Fatalf("parsed %d benchmarks, want 7", len(benches))
	}
	b := benches[0]
	if b.Name != "Fig6TopKPkg/uni" || b.Iterations != 100 || b.NsPerOp != 12345678 {
		t.Errorf("first bench: %+v", b)
	}
	if b.Metrics["B/op"] != 2048 || b.Metrics["allocs/op"] != 12 {
		t.Errorf("benchmem metrics: %+v", b.Metrics)
	}
	if got := benches[2].Metrics["hits/op"]; got != 125 {
		t.Errorf("hits/op = %g", got)
	}
}

func TestCompare(t *testing.T) {
	benches, _ := parse(sample)
	cs := compare(benches)
	if len(cs) != 3 {
		t.Fatalf("got %d comparisons, want 3", len(cs))
	}
	c := cs[0]
	if c.Name != "Fig8PostFeedbackRecommend" {
		t.Errorf("name = %q", c.Name)
	}
	if math.Abs(c.Speedup-2009556786.0/262562438.0) > 1e-9 {
		t.Errorf("speedup = %g", c.Speedup)
	}
	if c.AfterHitsPerOp != 125 || c.BaselineSearches != 161.5 || c.DedupRatio != 0.231 {
		t.Errorf("metrics not threaded through: %+v", c)
	}
	churn := cs[1]
	if churn.Name != "ChurnRecommend" {
		t.Errorf("churn comparison name = %q", churn.Name)
	}
	if math.Abs(churn.Speedup-0.5) > 1e-9 {
		t.Errorf("churn speedup = %g, want 0.5 (throughput retained)", churn.Speedup)
	}
	epoch := cs[2]
	if epoch.Name != "EpochBuild" {
		t.Errorf("epoch comparison name = %q", epoch.Name)
	}
	if math.Abs(epoch.Speedup-10) > 1e-9 {
		t.Errorf("epoch build speedup = %g, want 10", epoch.Speedup)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	benches, _ := parse([]string{"", "random text", "Benchmark bad line"})
	if len(benches) != 0 {
		t.Errorf("parsed garbage: %+v", benches)
	}
}
