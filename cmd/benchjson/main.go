// Command benchjson converts `go test -bench` output on stdin into a
// committed JSON trajectory file (BENCH_*.json): ns/op plus every custom
// metric the benchmarks report (cache hits/op, searches/op, dedup ratio,
// B/op, allocs/op), and baseline-vs-after comparisons for benchmarks that
// expose nocache/cached variants. Future PRs are judged against these
// numbers, so the file is the PR's performance evidence.
//
// With -serve, stdin instead holds loadgen JSON run records (one per
// run, concatenated), and the output is BENCH_serve.json: the raw run
// records plus static-vs-mutating comparisons of per-route latency
// quantiles and throughput. Runs already in the -out file are kept, and
// a new run with the same name replaces the old one — so the static and
// mutating halves can be generated in separate invocations.
//
// Usage:
//
//	go test -run '^$' -bench 'Fig6TopKPkg|Fig8' -benchmem . | benchjson -out BENCH_recommend.json
//	loadgen -duration 30s | benchjson -serve -out BENCH_serve.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"toppkg/internal/loadgen"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Comparison pairs a benchmark's baseline variant with its treated one:
// nocache vs cached for the batching pipeline, static vs mutating for the
// live-catalogue churn benchmark (where Speedup < 1 reads as the fraction
// of throughput retained under churn), full vs delta for epoch
// construction (Speedup is how much cheaper an incremental build is),
// unpruned vs pruned for the large-catalogue dominance filter (Speedup is
// what the skyline head skip buys per search), and unpruned vs
// partitioned (":partitioned" name suffix) for the sketch-refine
// partition.
type Comparison struct {
	Name             string  `json:"name"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op"`
	AfterNsPerOp     float64 `json:"after_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	BaselineSearches float64 `json:"baseline_searches_per_op,omitempty"`
	AfterSearches    float64 `json:"after_searches_per_op,omitempty"`
	AfterHitsPerOp   float64 `json:"after_hits_per_op,omitempty"`
	DedupRatio       float64 `json:"dedup_ratio,omitempty"`
	// Retained/Revived are the churn benchmark's cache-survival counters:
	// entries Reconcile carried across epoch swaps per op, and the subset
	// proven forward from a racing old-epoch Put. Zero means every swap
	// still wipes the cache.
	AfterRetained float64 `json:"after_retained_per_op,omitempty"`
	AfterRevived  float64 `json:"after_revived_per_op,omitempty"`
}

// Report is the file layout.
type Report struct {
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go_version"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Comparisons derive from <name>/nocache vs <name>/cached and
	// <name>/static vs <name>/mutating pairs; the speedup is baseline
	// ns/op divided by after ns/op.
	Comparisons []Comparison `json:"comparisons,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkFig8ElicitationRound/cached-4   20  262562438 ns/op  125.0 hits/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

// metricPair matches the trailing "<value> <unit>" metric pairs.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+) (\S+)`)

// parse consumes bench output and returns the results plus the cpu line.
func parse(lines []string) (benches []Benchmark, cpu string) {
	for _, line := range lines {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, mp := range metricPair.FindAllStringSubmatch(m[4], -1) {
			if v, err := strconv.ParseFloat(mp[1], 64); err == nil {
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[mp[2]] = v
			}
		}
		benches = append(benches, b)
	}
	return benches, cpu
}

// comparePairs are the baseline→after variant suffixes folded into
// Comparisons.
// suffix disambiguates comparisons sharing a baseline variant (the
// dominance filter and the sketch-refine partition are both measured
// against /unpruned).
var comparePairs = []struct{ base, after, suffix string }{
	{"/nocache", "/cached", ""},
	{"/static", "/mutating", ""},
	{"/full", "/delta", ""},
	{"/unpruned", "/pruned", ""},
	{"/unpruned", "/partitioned", ":partitioned"},
}

// compare pairs baseline variants with their treated counterparts.
func compare(benches []Benchmark) []Comparison {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Comparison
	for _, b := range benches {
		for _, pair := range comparePairs {
			parent, ok := strings.CutSuffix(b.Name, pair.base)
			if !ok {
				continue
			}
			after, ok := byName[parent+pair.after]
			if !ok {
				continue
			}
			c := Comparison{
				Name:            parent + pair.suffix,
				BaselineNsPerOp: b.NsPerOp,
				AfterNsPerOp:    after.NsPerOp,
			}
			if after.NsPerOp > 0 {
				c.Speedup = b.NsPerOp / after.NsPerOp
			}
			c.BaselineSearches = b.Metrics["searches/op"]
			c.AfterSearches = after.Metrics["searches/op"]
			c.AfterHitsPerOp = after.Metrics["hits/op"]
			c.DedupRatio = after.Metrics["dedup"]
			c.AfterRetained = after.Metrics["retained/op"]
			c.AfterRevived = after.Metrics["revived/op"]
			out = append(out, c)
		}
	}
	return out
}

// ServeComparison pairs one route's static-run latency with its
// mutating-run counterpart. P99Ratio is mutating p99 over static p99 —
// how much tail latency the route pays for background catalogue churn.
type ServeComparison struct {
	Route         string  `json:"route"`
	StaticP50Ms   float64 `json:"static_p50_ms"`
	MutatingP50Ms float64 `json:"mutating_p50_ms"`
	StaticP99Ms   float64 `json:"static_p99_ms"`
	MutatingP99Ms float64 `json:"mutating_p99_ms"`
	P99Ratio      float64 `json:"p99_ratio,omitempty"`
}

// ScaleoutComparison pairs one route's single-process latency with its
// sharded-gateway counterpart. P99Ratio is sharded p99 over single p99 —
// the tail-latency cost of the extra proxy hop (and, on a multi-core
// host, what the parallelism buys back).
type ScaleoutComparison struct {
	Route       string  `json:"route"`
	SingleP50Ms float64 `json:"single_p50_ms"`
	ShardedP50M float64 `json:"sharded_p50_ms"`
	SingleP99Ms float64 `json:"single_p99_ms"`
	ShardedP99M float64 `json:"sharded_p99_ms"`
	P99Ratio    float64 `json:"p99_ratio,omitempty"`
}

// ServeReport is the BENCH_serve.json layout: the loadgen run records
// verbatim, plus derived static-vs-mutating and single-vs-sharded
// comparisons.
type ServeReport struct {
	Generated string           `json:"generated"`
	GoVersion string           `json:"go_version"`
	CPUs      int              `json:"cpus"`
	Runs      []loadgen.Report `json:"runs"`
	// ThroughputRetained is mutating RPS over static RPS — the serving-path
	// analogue of the ChurnRecommend speedup in BENCH_recommend.json.
	ThroughputRetained float64           `json:"throughput_retained,omitempty"`
	Comparisons        []ServeComparison `json:"comparisons,omitempty"`
	// ShardScaleout is sharded RPS over static RPS (runs "sharded" vs
	// "static"); ShardMutatingScaleout the same for the churn pair. On a
	// single-core host expect ≤ 1 — shards add a proxy hop but compete for
	// the one core; the scale-out win needs cores for the shards to own.
	ShardScaleout         float64              `json:"shard_scaleout,omitempty"`
	ShardMutatingScaleout float64              `json:"shard_mutating_scaleout,omitempty"`
	ShardComparisons      []ScaleoutComparison `json:"shard_comparisons,omitempty"`
}

// upsertRun replaces the run with the same name or appends.
func upsertRun(runs []loadgen.Report, r loadgen.Report) []loadgen.Report {
	for i := range runs {
		if runs[i].Name == r.Name {
			runs[i] = r
			return runs
		}
	}
	return append(runs, r)
}

// compareServe derives route-by-route comparisons from the runs named
// "static" and "mutating" (loadgen's default labels). The healthz route
// is the harness pre-flight, not serving traffic, so it is skipped.
func compareServe(runs []loadgen.Report) ([]ServeComparison, float64) {
	var static, mutating *loadgen.Report
	for i := range runs {
		switch runs[i].Name {
		case "static":
			static = &runs[i]
		case "mutating":
			mutating = &runs[i]
		}
	}
	if static == nil || mutating == nil {
		return nil, 0
	}
	var routes []string
	for name, rr := range static.Routes {
		if name != "healthz" && rr.Count > 0 && mutating.Routes[name].Count > 0 {
			routes = append(routes, name)
		}
	}
	sort.Strings(routes)
	out := make([]ServeComparison, 0, len(routes))
	for _, name := range routes {
		s, m := static.Routes[name], mutating.Routes[name]
		c := ServeComparison{
			Route:         name,
			StaticP50Ms:   s.Latency.P50Ms,
			MutatingP50Ms: m.Latency.P50Ms,
			StaticP99Ms:   s.Latency.P99Ms,
			MutatingP99Ms: m.Latency.P99Ms,
		}
		if s.Latency.P99Ms > 0 {
			c.P99Ratio = m.Latency.P99Ms / s.Latency.P99Ms
		}
		out = append(out, c)
	}
	retained := 0.0
	if static.ThroughputRPS > 0 {
		retained = mutating.ThroughputRPS / static.ThroughputRPS
	}
	return out, retained
}

// findRun returns the run with the given name, or nil.
func findRun(runs []loadgen.Report, name string) *loadgen.Report {
	for i := range runs {
		if runs[i].Name == name {
			return &runs[i]
		}
	}
	return nil
}

// compareScaleout derives single-vs-sharded comparisons from the runs
// named "static"/"sharded" (route latencies + throughput ratio) and
// "mutating"/"sharded-mutating" (throughput ratio only — churn-pair
// route latencies already live in Comparisons for the single process).
func compareScaleout(runs []loadgen.Report) ([]ScaleoutComparison, float64, float64) {
	var cmps []ScaleoutComparison
	scaleout := 0.0
	single, sharded := findRun(runs, "static"), findRun(runs, "sharded")
	if single != nil && sharded != nil {
		var routes []string
		for name, rr := range single.Routes {
			if name != "healthz" && rr.Count > 0 && sharded.Routes[name].Count > 0 {
				routes = append(routes, name)
			}
		}
		sort.Strings(routes)
		for _, name := range routes {
			s, g := single.Routes[name], sharded.Routes[name]
			c := ScaleoutComparison{
				Route:       name,
				SingleP50Ms: s.Latency.P50Ms,
				ShardedP50M: g.Latency.P50Ms,
				SingleP99Ms: s.Latency.P99Ms,
				ShardedP99M: g.Latency.P99Ms,
			}
			if s.Latency.P99Ms > 0 {
				c.P99Ratio = g.Latency.P99Ms / s.Latency.P99Ms
			}
			cmps = append(cmps, c)
		}
		if single.ThroughputRPS > 0 {
			scaleout = sharded.ThroughputRPS / single.ThroughputRPS
		}
	}
	mutScaleout := 0.0
	mut, shardedMut := findRun(runs, "mutating"), findRun(runs, "sharded-mutating")
	if mut != nil && shardedMut != nil && mut.ThroughputRPS > 0 {
		mutScaleout = shardedMut.ThroughputRPS / mut.ThroughputRPS
	}
	return cmps, scaleout, mutScaleout
}

// serveMode folds loadgen run records from stdin into a ServeReport,
// keeping runs already present in the out file.
func serveMode(outPath string) {
	var runs []loadgen.Report
	if outPath != "" {
		if data, err := os.ReadFile(outPath); err == nil {
			var prev ServeReport
			if err := json.Unmarshal(data, &prev); err != nil {
				log.Fatalf("benchjson -serve: existing %s is not a serve report: %v", outPath, err)
			}
			runs = prev.Runs
		}
	}
	dec := json.NewDecoder(os.Stdin)
	n := 0
	for {
		var r loadgen.Report
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			log.Fatalf("benchjson -serve: decoding run record %d: %v", n+1, err)
		}
		if r.Name == "" {
			log.Fatalf("benchjson -serve: run record %d has no name", n+1)
		}
		runs = upsertRun(runs, r)
		n++
	}
	if n == 0 {
		log.Fatal("benchjson -serve: no loadgen run records on stdin")
	}
	rep := ServeReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Runs:      runs,
	}
	rep.Comparisons, rep.ThroughputRetained = compareServe(runs)
	rep.ShardComparisons, rep.ShardScaleout, rep.ShardMutatingScaleout = compareScaleout(runs)
	writeOut(outPath, rep)
	for _, c := range rep.Comparisons {
		fmt.Fprintf(os.Stderr, "%s: p99 %.3gms -> %.3gms under churn (%.2fx)\n",
			c.Route, c.StaticP99Ms, c.MutatingP99Ms, c.P99Ratio)
	}
	if rep.ThroughputRetained > 0 {
		fmt.Fprintf(os.Stderr, "throughput retained under churn: %.2f\n", rep.ThroughputRetained)
	}
	for _, c := range rep.ShardComparisons {
		fmt.Fprintf(os.Stderr, "%s: p99 %.3gms single -> %.3gms sharded (%.2fx)\n",
			c.Route, c.SingleP99Ms, c.ShardedP99M, c.P99Ratio)
	}
	if rep.ShardScaleout > 0 {
		fmt.Fprintf(os.Stderr, "sharded throughput scaleout: %.2fx static (%.2fx mutating) on %d CPUs\n",
			rep.ShardScaleout, rep.ShardMutatingScaleout, rep.CPUs)
	}
}

// writeOut marshals v to the out file, or stdout when out is empty.
func writeOut(out string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	serve := flag.Bool("serve", false, "stdin holds loadgen JSON run records instead of go test -bench output")
	flag.Parse()
	if *serve {
		serveMode(*out)
		return
	}

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	benches, cpu := parse(lines)
	if len(benches) == 0 {
		log.Fatal("benchjson: no benchmark lines on stdin")
	}
	report := Report{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		CPU:         cpu,
		Benchmarks:  benches,
		Comparisons: compare(benches),
	}
	writeOut(*out, report)
	for _, c := range report.Comparisons {
		fmt.Fprintf(os.Stderr, "%s: %.3gms -> %.3gms (%.2fx)\n",
			c.Name, c.BaselineNsPerOp/1e6, c.AfterNsPerOp/1e6, c.Speedup)
	}
}
