// Command benchjson converts `go test -bench` output on stdin into a
// committed JSON trajectory file (BENCH_*.json): ns/op plus every custom
// metric the benchmarks report (cache hits/op, searches/op, dedup ratio,
// B/op, allocs/op), and baseline-vs-after comparisons for benchmarks that
// expose nocache/cached variants. Future PRs are judged against these
// numbers, so the file is the PR's performance evidence.
//
// Usage:
//
//	go test -run '^$' -bench 'Fig6TopKPkg|Fig8' -benchmem . | benchjson -out BENCH_recommend.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Comparison pairs a benchmark's baseline variant with its treated one:
// nocache vs cached for the batching pipeline, static vs mutating for the
// live-catalogue churn benchmark (where Speedup < 1 reads as the fraction
// of throughput retained under churn), and full vs delta for epoch
// construction (Speedup is how much cheaper an incremental build is).
type Comparison struct {
	Name             string  `json:"name"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op"`
	AfterNsPerOp     float64 `json:"after_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	BaselineSearches float64 `json:"baseline_searches_per_op,omitempty"`
	AfterSearches    float64 `json:"after_searches_per_op,omitempty"`
	AfterHitsPerOp   float64 `json:"after_hits_per_op,omitempty"`
	DedupRatio       float64 `json:"dedup_ratio,omitempty"`
	// Retained/Revived are the churn benchmark's cache-survival counters:
	// entries Reconcile carried across epoch swaps per op, and the subset
	// proven forward from a racing old-epoch Put. Zero means every swap
	// still wipes the cache.
	AfterRetained float64 `json:"after_retained_per_op,omitempty"`
	AfterRevived  float64 `json:"after_revived_per_op,omitempty"`
}

// Report is the file layout.
type Report struct {
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go_version"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Comparisons derive from <name>/nocache vs <name>/cached and
	// <name>/static vs <name>/mutating pairs; the speedup is baseline
	// ns/op divided by after ns/op.
	Comparisons []Comparison `json:"comparisons,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkFig8ElicitationRound/cached-4   20  262562438 ns/op  125.0 hits/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

// metricPair matches the trailing "<value> <unit>" metric pairs.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+) (\S+)`)

// parse consumes bench output and returns the results plus the cpu line.
func parse(lines []string) (benches []Benchmark, cpu string) {
	for _, line := range lines {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, mp := range metricPair.FindAllStringSubmatch(m[4], -1) {
			if v, err := strconv.ParseFloat(mp[1], 64); err == nil {
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[mp[2]] = v
			}
		}
		benches = append(benches, b)
	}
	return benches, cpu
}

// comparePairs are the baseline→after variant suffixes folded into
// Comparisons.
var comparePairs = []struct{ base, after string }{
	{"/nocache", "/cached"},
	{"/static", "/mutating"},
	{"/full", "/delta"},
}

// compare pairs baseline variants with their treated counterparts.
func compare(benches []Benchmark) []Comparison {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Comparison
	for _, b := range benches {
		for _, pair := range comparePairs {
			parent, ok := strings.CutSuffix(b.Name, pair.base)
			if !ok {
				continue
			}
			after, ok := byName[parent+pair.after]
			if !ok {
				continue
			}
			c := Comparison{
				Name:            parent,
				BaselineNsPerOp: b.NsPerOp,
				AfterNsPerOp:    after.NsPerOp,
			}
			if after.NsPerOp > 0 {
				c.Speedup = b.NsPerOp / after.NsPerOp
			}
			c.BaselineSearches = b.Metrics["searches/op"]
			c.AfterSearches = after.Metrics["searches/op"]
			c.AfterHitsPerOp = after.Metrics["hits/op"]
			c.DedupRatio = after.Metrics["dedup"]
			c.AfterRetained = after.Metrics["retained/op"]
			c.AfterRevived = after.Metrics["revived/op"]
			out = append(out, c)
		}
	}
	return out
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	benches, cpu := parse(lines)
	if len(benches) == 0 {
		log.Fatal("benchjson: no benchmark lines on stdin")
	}
	report := Report{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		CPU:         cpu,
		Benchmarks:  benches,
		Comparisons: compare(benches),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	for _, c := range report.Comparisons {
		fmt.Fprintf(os.Stderr, "%s: %.3gms -> %.3gms (%.2fx)\n",
			c.Name, c.BaselineNsPerOp/1e6, c.AfterNsPerOp/1e6, c.Speedup)
	}
}
