module toppkg

go 1.22
